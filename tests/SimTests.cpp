//===- tests/SimTests.cpp - Trace-driven simulator tests ----------------------===//
//
// Validates the cycle simulator (sim/Simulator.h) against the static
// accounting it cross-checks:
//
//  * on every paper-suite workload × all four strategies at move latency
//    5, simulated cycles are >= the static estimate and within 25% of it
//    (the simulator carries real bus/port state but the static model is
//    sound for these kernels);
//  * the relative-performance strategy ordering of Figures 7/8 is
//    reproduced when recomputed from simulated cycles;
//  * tracing changes nothing about an interpretation (same InterpResult,
//    same profile) and the recorded trace is consistent with the profile;
//  * the remote-access protocol (request transfer → home memory port →
//    reply) fires on a synthetic program whose placement splits objects
//    across clusters, producing remote accesses, transit stalls and
//    port-queuing stalls that the bundled workloads (whose placements are
//    always operation-consistent) never exercise.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "ir/IRBuilder.h"
#include "machine/MachineModel.h"
#include "partition/DataPlacement.h"
#include "partition/Pipeline.h"
#include "profile/ExecTrace.h"
#include "profile/Interpreter.h"
#include "sched/ListScheduler.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

using namespace gdp;

namespace {

/// The whole suite, prepared once with trace capture.
const std::vector<bench::SuiteEntry> &suite() {
  static const std::vector<bench::SuiteEntry> S =
      bench::loadSuite(/*CaptureTraces=*/true);
  return S;
}

const StrategyKind AllStrategies[] = {StrategyKind::Unified, StrategyKind::GDP,
                                      StrategyKind::ProfileMax,
                                      StrategyKind::Naive};

/// The full suite × 4 strategies at move latency 5, evaluated statically
/// and simulated, once for every test that needs it.
const std::vector<bench::SimEval> &matrixLat5() {
  static const std::vector<bench::SimEval> Evals = [] {
    std::vector<bench::EvalTask> Tasks;
    for (const bench::SuiteEntry &E : suite())
      for (StrategyKind K : AllStrategies)
        Tasks.push_back({&E, K, 5});
    return bench::runSimMatrix(Tasks);
  }();
  return Evals;
}

TEST(SimTest, CyclesBoundedByStaticEstimateAcrossSuite) {
  // Acceptance bound: for every (workload, strategy) at latency 5 the
  // simulation is >= the static estimate (blocks replay back to back at
  // their scheduled lengths) and within 25% of it.
  const std::vector<bench::SimEval> &Evals = matrixLat5();
  ASSERT_EQ(Evals.size(), suite().size() * 4);
  size_t I = 0;
  for (const bench::SuiteEntry &E : suite())
    for (StrategyKind K : AllStrategies) {
      const bench::SimEval &Ev = Evals[I++];
      ASSERT_TRUE(Ev.S.Ok) << E.Name << " " << strategyName(K) << ": "
                           << Ev.S.Error;
      EXPECT_GE(Ev.S.Cycles, Ev.R.Cycles)
          << E.Name << " " << strategyName(K)
          << ": simulation undercut the static estimate";
      EXPECT_LE(Ev.S.Cycles, Ev.R.Cycles + Ev.R.Cycles / 4)
          << E.Name << " " << strategyName(K)
          << ": simulation drifted more than 25% past the static estimate";
      EXPECT_GT(Ev.S.BlockExecs, 0u) << E.Name;
      ASSERT_EQ(Ev.S.ClusterUtilization.size(), 2u) << E.Name;
      for (double U : Ev.S.ClusterUtilization) {
        EXPECT_GE(U, 0.0) << E.Name << " " << strategyName(K);
        EXPECT_LE(U, 1.0) << E.Name << " " << strategyName(K);
      }
    }
}

TEST(SimTest, ReproducesFig78StrategyOrdering) {
  // The headline claim of Figures 7/8 — the relative order of the
  // strategies' average relative performance — must survive the switch
  // from static to simulated cycles, and each average must stay close.
  const std::vector<bench::SimEval> &Evals = matrixLat5();
  // Index 0 of each group of 4 is Unified (the baseline).
  const size_t NumStrategies = 4;
  std::vector<double> StaticAvg(NumStrategies, 0), SimAvg(NumStrategies, 0);
  size_t NumBench = suite().size();
  for (size_t B = 0; B != NumBench; ++B) {
    const bench::SimEval &U = Evals[B * NumStrategies];
    for (size_t S = 1; S != NumStrategies; ++S) {
      const bench::SimEval &Ev = Evals[B * NumStrategies + S];
      StaticAvg[S] += bench::relativePerf(U.R.Cycles, Ev.R.Cycles);
      SimAvg[S] += bench::relativePerf(U.S.Cycles, Ev.S.Cycles);
    }
  }
  std::vector<size_t> StaticOrder(NumStrategies - 1),
      SimOrder(NumStrategies - 1);
  std::iota(StaticOrder.begin(), StaticOrder.end(), 1);
  std::iota(SimOrder.begin(), SimOrder.end(), 1);
  std::sort(StaticOrder.begin(), StaticOrder.end(),
            [&](size_t A, size_t B) { return StaticAvg[A] > StaticAvg[B]; });
  std::sort(SimOrder.begin(), SimOrder.end(),
            [&](size_t A, size_t B) { return SimAvg[A] > SimAvg[B]; });
  EXPECT_EQ(StaticOrder, SimOrder)
      << "simulated cycles reorder the figure's strategy ranking";
  for (size_t S = 1; S != NumStrategies; ++S)
    EXPECT_NEAR(SimAvg[S] / static_cast<double>(NumBench),
                StaticAvg[S] / static_cast<double>(NumBench), 0.05)
        << strategyName(AllStrategies[S]);
}

// --- Trace hook: observational transparency -------------------------------

TEST(SimTest, TraceHookChangesNothingObservable) {
  // Same program interpreted with and without a trace sink: identical
  // InterpResult and identical profile on every function/block/operation.
  for (const char *Name : {"rawcaudio", "fir", "viterbi", "histogram"}) {
    auto P1 = buildWorkload(Name);
    auto P2 = buildWorkload(Name);
    ASSERT_TRUE(P1 && P2) << Name;

    Interpreter Plain(*P1);
    InterpResult RPlain = Plain.run();

    Interpreter Traced(*P2);
    ExecTrace Trace;
    Traced.setTrace(&Trace);
    InterpResult RTraced = Traced.run();

    ASSERT_TRUE(RPlain.Ok) << Name << ": " << RPlain.Error;
    ASSERT_TRUE(RTraced.Ok) << Name << ": " << RTraced.Error;
    EXPECT_EQ(RPlain.Steps, RTraced.Steps) << Name;
    EXPECT_EQ(RPlain.HasReturn, RTraced.HasReturn) << Name;
    EXPECT_EQ(RPlain.ReturnValue.I, RTraced.ReturnValue.I) << Name;
    EXPECT_EQ(RPlain.ReturnValue.F, RTraced.ReturnValue.F) << Name;

    const ProfileData &ProfPlain = Plain.getProfile();
    const ProfileData &ProfTraced = Traced.getProfile();
    uint64_t TotalFreq = 0;
    for (unsigned F = 0; F != P1->getNumFunctions(); ++F) {
      const Function &Fn = P1->getFunction(F);
      for (unsigned B = 0; B != Fn.getNumBlocks(); ++B) {
        EXPECT_EQ(ProfPlain.getBlockFreq(F, B), ProfTraced.getBlockFreq(F, B))
            << Name << " f" << F << " bb" << B;
        TotalFreq += ProfPlain.getBlockFreq(F, B);
      }
      for (unsigned Op = 0; Op != Fn.getNumOpIds(); ++Op)
        EXPECT_EQ(ProfPlain.getAccessMap(F, Op), ProfTraced.getAccessMap(F, Op))
            << Name << " f" << F << " op" << Op;
    }

    // The trace is consistent with the profile it rode along with: one
    // block event per counted block execution, one access event per
    // counted dynamic access.
    EXPECT_EQ(Trace.numBlockEvents(), TotalFreq) << Name;
    uint64_t TotalAccesses = 0;
    for (unsigned F = 0; F != P1->getNumFunctions(); ++F)
      for (unsigned Op = 0; Op != P1->getFunction(F).getNumOpIds(); ++Op)
        for (const auto &[Obj, N] : ProfPlain.getAccessMap(F, Op))
          TotalAccesses += N;
    EXPECT_EQ(Trace.numAccessEvents(), TotalAccesses) << Name;
  }
}

// --- Remote-access protocol on a synthetic split placement ----------------

/// reads[i] += a[i] over 16 elements: one load (from `a`) and one store
/// (to `out`) per iteration.
std::unique_ptr<Program> makeLoopProgram(int &AOut, int &OutOut) {
  auto P = std::make_unique<Program>("remote");
  AOut = P->addGlobal("a", 16, 4);
  std::vector<int64_t> Init(16);
  for (int I = 0; I != 16; ++I)
    Init[static_cast<unsigned>(I)] = I * 3;
  P->getObject(AOut).setInit(Init);
  OutOut = P->addGlobal("out", 16, 4);
  Function *F = P->makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int ABase = B.addrOf(AOut);
  int OBase = B.addrOf(OutOut);
  auto L = B.beginCountedLoop(0, 16);
  int V = B.load(B.add(ABase, L.IndVar));
  B.store(B.add(V, B.movi(1)), B.add(OBase, L.IndVar));
  B.endCountedLoop(L);
  B.ret(B.movi(0));
  return P;
}

TEST(SimTest, RemoteAccessPaysTransferAndStalls) {
  int A = 0, Out = 0;
  auto P = makeLoopProgram(A, Out);
  Interpreter I(*P);
  ExecTrace Trace;
  I.setTrace(&Trace);
  InterpResult IR = I.run();
  ASSERT_TRUE(IR.Ok) << IR.Error;

  MachineModel MM = MachineModel::makeDefault(2, 5);
  ClusterAssignment CA(*P); // Everything on cluster 0.

  // All homes local: every access is served in the static schedule.
  DataPlacement Local(P->getNumObjects());
  Local.setHome(static_cast<unsigned>(A), 0);
  Local.setHome(static_cast<unsigned>(Out), 0);
  SimResult SLocal = simulateTrace(*P, Trace, MM, CA, Local);
  ASSERT_TRUE(SLocal.Ok) << SLocal.Error;
  EXPECT_EQ(SLocal.RemoteAccesses, 0u);
  EXPECT_EQ(SLocal.LocalAccesses, 32u); // 16 loads + 16 stores.
  EXPECT_EQ(SLocal.MemPortStallCycles, 0u);

  // Home `a` on the other cluster: its 16 loads turn remote and pay the
  // request transfer, home-port service and reply transfer; stores to
  // `out` stay local.
  DataPlacement Split(P->getNumObjects());
  Split.setHome(static_cast<unsigned>(A), 1);
  Split.setHome(static_cast<unsigned>(Out), 0);
  SimResult SSplit = simulateTrace(*P, Trace, MM, CA, Split);
  ASSERT_TRUE(SSplit.Ok) << SSplit.Error;
  EXPECT_EQ(SSplit.RemoteAccesses, 16u);
  EXPECT_EQ(SSplit.LocalAccesses, 16u);
  // Each remote load adds two transfers (request + reply) of 5 cycles each.
  EXPECT_GE(SSplit.BusTransfers, SLocal.BusTransfers + 32u);
  EXPECT_GE(SSplit.MoveLatencyStallCycles,
            SLocal.MoveLatencyStallCycles + 16u * 2u * 5u);
  EXPECT_GT(SSplit.Cycles, SLocal.Cycles);

  // Both runs bound the static estimate from above.
  ProgramSchedule Static =
      scheduleProgram(*P, I.getProfile(), MM, CA);
  EXPECT_GE(SLocal.Cycles, Static.TotalCycles);
  EXPECT_GE(SSplit.Cycles, Static.TotalCycles);
}

TEST(SimTest, RemoteRequestsQueueAtTheHomePort) {
  // Two independent loads on two different clusters, both homed on a
  // third: with enough bus bandwidth their requests arrive the same cycle
  // and the single home memory port serializes them (a memory-port
  // stall). Bandwidth 3 leaves a slot for each request next to the first
  // load's reply; the second load's value is consumed by a store on its
  // own cluster so no cross-cluster register move competes either.
  auto P = std::make_unique<Program>("portclash");
  int A = P->addGlobal("a", 8, 4);
  std::vector<int64_t> Init(8, 7);
  P->getObject(A).setInit(Init);
  int Out = P->addGlobal("out", 8, 4);
  Function *F = P->makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int V1 = B.load(B.addrOf(A), 0);  // Cluster 0.
  int V2 = B.load(B.addrOf(A), 1);  // Cluster 1.
  B.store(V2, B.addrOf(Out), 0);    // Cluster 1, home-local.
  B.ret(V1);

  Interpreter I(*P);
  ExecTrace Trace;
  I.setTrace(&Trace);
  InterpResult IR = I.run();
  ASSERT_TRUE(IR.Ok) << IR.Error;

  MachineModel MM = MachineModel::makeDefault(3, 5);
  MM.setMoveBandwidth(3);

  // First addrOf+load stay on cluster 0; every object-referencing op
  // after the first load (second addrOf+load, the store and its addrOf)
  // goes to cluster 1. `a` is homed on cluster 2 so both loads go remote.
  ClusterAssignment CA(*P);
  const BasicBlock &BB = F->getEntryBlock();
  bool SawFirstLoad = false;
  unsigned NumLoads = 0;
  for (unsigned OpI = 0; OpI != BB.size(); ++OpI) {
    const Operation &Op = BB.getOp(OpI);
    bool References = Op.getOpcode() == Opcode::AddrOf ||
                      Op.getOpcode() == Opcode::Load ||
                      Op.getOpcode() == Opcode::Store;
    if (References && SawFirstLoad)
      CA.set(0, static_cast<unsigned>(Op.getId()), 1);
    if (Op.getOpcode() == Opcode::Load) {
      ++NumLoads;
      SawFirstLoad = true;
    }
  }
  ASSERT_EQ(NumLoads, 2u);

  DataPlacement PL(P->getNumObjects());
  PL.setHome(static_cast<unsigned>(A), 2);
  PL.setHome(static_cast<unsigned>(Out), 1);
  SimResult S = simulateTrace(*P, Trace, MM, CA, PL);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.RemoteAccesses, 2u); // The loads; the store is home-local.
  EXPECT_EQ(S.LocalAccesses, 1u);
  EXPECT_GT(S.MemPortStallCycles, 0u)
      << "simultaneous arrivals must queue at the single home port";
  EXPECT_GE(S.MoveLatencyStallCycles, 2u * 2u * 5u);
}

TEST(SimTest, MismatchedTraceIsRejected) {
  int A = 0, Out = 0;
  auto P = makeLoopProgram(A, Out);
  MachineModel MM = MachineModel::makeDefault(2, 5);
  ClusterAssignment CA(*P);
  DataPlacement PL(P->getNumObjects());
  ExecTrace Empty; // Never recorded against P.
  SimResult S = simulateTrace(*P, Empty, MM, CA, PL);
  EXPECT_FALSE(S.Ok);
  EXPECT_FALSE(S.Error.empty());
}

TEST(SimTest, SimulateStrategyRequiresCapturedTrace) {
  auto P = buildWorkload("fir");
  ASSERT_TRUE(P);
  PreparedProgram PP = prepareProgram(*P); // No trace capture.
  ASSERT_TRUE(PP.Ok) << PP.Error;
  PipelineOptions Opt;
  PipelineResult R = runStrategy(PP, Opt);
  SimResult S = simulateStrategy(PP, R, Opt);
  EXPECT_FALSE(S.Ok);
  EXPECT_NE(S.Error.find("CaptureTrace"), std::string::npos);
}

} // namespace
