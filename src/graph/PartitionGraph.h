//===- graph/PartitionGraph.h - Weighted undirected graph -------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weighted undirected graph the multilevel partitioner operates on.
/// Nodes carry a *vector* of weights (one entry per balance constraint —
/// the multi-constraint capability of METIS the paper relies on: object
/// bytes and operation counts are balanced simultaneously); edges carry a
/// single weight (communication volume).
///
//===----------------------------------------------------------------------===//

#ifndef GDP_GRAPH_PARTITIONGRAPH_H
#define GDP_GRAPH_PARTITIONGRAPH_H

#include <cassert>
#include <cstdint>
#include <map>
#include <vector>

namespace gdp {

/// A weighted undirected multigraph (parallel edges accumulate).
class PartitionGraph {
public:
  explicit PartitionGraph(unsigned NumConstraints = 1)
      : NumConstraints(NumConstraints) {
    assert(NumConstraints >= 1 && "need at least one balance constraint");
  }

  unsigned getNumConstraints() const { return NumConstraints; }
  unsigned getNumNodes() const {
    return static_cast<unsigned>(NodeWeights.size());
  }

  /// Adds a node with the given per-constraint weights (must have
  /// getNumConstraints() entries); returns its id.
  unsigned addNode(std::vector<uint64_t> Weights);

  /// Adds weight to one constraint of an existing node.
  void addNodeWeight(unsigned Node, unsigned Constraint, uint64_t Delta) {
    NodeWeights[Node][Constraint] += Delta;
  }

  const std::vector<uint64_t> &getNodeWeights(unsigned Node) const {
    assert(Node < getNumNodes() && "node out of range");
    return NodeWeights[Node];
  }

  /// Adds (or accumulates onto) the undirected edge {A, B}. Self-edges are
  /// ignored; zero weights are ignored.
  void addEdge(unsigned A, unsigned B, uint64_t W);

  /// Neighbors of \p Node with accumulated edge weights, keyed by neighbor
  /// id (deterministic iteration order).
  const std::map<unsigned, uint64_t> &neighbors(unsigned Node) const {
    assert(Node < getNumNodes() && "node out of range");
    return Adj[Node];
  }

  /// Sum of node weights per constraint.
  std::vector<uint64_t> totalWeights() const;

  /// Sum of all edge weights (each undirected edge counted once).
  uint64_t totalEdgeWeight() const;

  /// Total edge weight crossing parts under \p Assignment.
  uint64_t cutWeight(const std::vector<unsigned> &Assignment) const;

private:
  unsigned NumConstraints;
  std::vector<std::vector<uint64_t>> NodeWeights;
  std::vector<std::map<unsigned, uint64_t>> Adj;
};

} // namespace gdp

#endif // GDP_GRAPH_PARTITIONGRAPH_H
