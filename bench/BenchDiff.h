//===- bench/BenchDiff.h - Benchmark record comparison ----------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two benchmark JSON files and flags per-metric regressions —
/// the core of the `bench_diff` tool and the CI bench-regression gate
/// (docs/OBSERVABILITY.md). Two schemas are understood:
///
///  * `gdp-bench-v1` (the harness's --json records): records are keyed by
///    benchmark|strategy|move_latency(|sim) and a fixed allowlist of
///    deterministic metrics is compared (cycles, moves, rhop runs, the
///    simulator stall taxonomy).
///  * `gdp-compile-speed-v1`: workloads are keyed by name and the
///    wall-clock `workload_wall_sec` is compared (callers pass a generous
///    tolerance — wall clocks are machine-dependent).
///
/// All compared metrics are lower-is-better. A metric regresses when
///   current > baseline * (1 + tolerance)  (or baseline is 0 and current
/// is not). Records present in the baseline but missing from the current
/// file count as regressions unless allowed; new records are reported but
/// never fail the diff. A record whose status is "failed" while its
/// baseline was clean is a regression regardless of metrics.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_BENCH_BENCHDIFF_H
#define GDP_BENCH_BENCHDIFF_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gdp {
namespace bench {

struct DiffOptions {
  /// Relative headroom applied to every metric without an override:
  /// 0.0 = exact, 0.05 = +5% allowed.
  double DefaultTolerance = 0.0;

  /// Per-metric tolerance overrides (metric name -> relative headroom).
  std::map<std::string, double> MetricTolerance;

  /// When true, records missing from the current file are reported but do
  /// not fail the diff.
  bool AllowMissing = false;
};

/// One compared metric of one record.
struct MetricDelta {
  std::string Key;    ///< Record key (benchmark|strategy|lat...).
  std::string Metric; ///< Metric name, or "" for record-level findings.
  double Baseline = 0;
  double Current = 0;
  double Tolerance = 0;
  bool Regressed = false;
  bool Improved = false;
};

struct DiffResult {
  bool Ok = false;          ///< Inputs parsed and were comparable.
  std::string Error;        ///< Parse/schema failure when !Ok.
  std::vector<MetricDelta> Deltas;     ///< Every compared metric.
  std::vector<std::string> MissingInCurrent;
  std::vector<std::string> NewInCurrent;
  unsigned Regressions = 0; ///< Count of regressed deltas (+ missing when
                            ///< not allowed, + newly-failed records).

  bool regressed() const { return Regressions != 0; }
};

/// Diffs two benchmark JSON documents (full file contents).
DiffResult diffBenchJson(const std::string &BaselineText,
                         const std::string &CurrentText,
                         const DiffOptions &Opt);

/// Human-readable report; \p Verbose includes unchanged metrics.
std::string renderDiffReport(const DiffResult &R, bool Verbose);

} // namespace bench
} // namespace gdp

#endif // GDP_BENCH_BENCHDIFF_H
