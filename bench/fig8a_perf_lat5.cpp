//===- bench/fig8a_perf_lat5.cpp - Paper Figure 8(a) ---------------------------===//

#define MOVE_LATENCY 5u
#define FIGURE_NAME "8(a)"
#include "fig78_perf.inc"
