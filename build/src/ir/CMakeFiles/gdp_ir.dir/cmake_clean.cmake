file(REMOVE_RECURSE
  "CMakeFiles/gdp_ir.dir/BasicBlock.cpp.o"
  "CMakeFiles/gdp_ir.dir/BasicBlock.cpp.o.d"
  "CMakeFiles/gdp_ir.dir/Function.cpp.o"
  "CMakeFiles/gdp_ir.dir/Function.cpp.o.d"
  "CMakeFiles/gdp_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/gdp_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/gdp_ir.dir/IRParser.cpp.o"
  "CMakeFiles/gdp_ir.dir/IRParser.cpp.o.d"
  "CMakeFiles/gdp_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/gdp_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/gdp_ir.dir/Opcode.cpp.o"
  "CMakeFiles/gdp_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/gdp_ir.dir/Program.cpp.o"
  "CMakeFiles/gdp_ir.dir/Program.cpp.o.d"
  "CMakeFiles/gdp_ir.dir/Verifier.cpp.o"
  "CMakeFiles/gdp_ir.dir/Verifier.cpp.o.d"
  "libgdp_ir.a"
  "libgdp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
