//===- profile/ExecTrace.h - Dynamic execution trace ------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic trace an interpreter run can optionally record for the
/// cycle-level simulator (src/sim): the sequence of basic-block executions,
/// plus — for every memory operation — the stream of data-object ids it
/// touched, in execution order.
///
/// The two parts line up by construction: a memory operation executes
/// exactly once per execution of its block (blocks are straight-line), and
/// block executions of one block occur in trace order, so the k-th entry of
/// an operation's access stream belongs to the k-th trace event of its
/// block. This factored encoding stays compact (one 32-bit object id per
/// dynamic access, no per-access position) and survives call interleaving:
/// a Call suspends the caller's block mid-flight, but the caller's later
/// accesses still append to *its* operations' streams in the right order.
///
/// Recording is opt-in (Interpreter::setTrace). A null trace pointer is the
/// contract for "disabled": the interpreter then performs no trace work and
/// no allocations (tested in SimTests.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef GDP_PROFILE_EXECTRACE_H
#define GDP_PROFILE_EXECTRACE_H

#include <cstdint>
#include <vector>

namespace gdp {

class Program;

/// One interpreter run's dynamic trace (see file comment for the format).
struct ExecTrace {
  /// One basic-block execution.
  struct BlockEvent {
    uint32_t Func;
    uint32_t Block;
  };

  /// Every block execution, in dynamic order. Mirrors exactly the
  /// profile's block-frequency increments: count(F, B) here equals
  /// ProfileData::getBlockFreq(F, B) of the same run.
  std::vector<BlockEvent> Blocks;

  /// AccessObj[F][OpId] — the data-object ids operation (F, OpId) accessed,
  /// one per execution, in execution order. Heap accesses record the
  /// malloc *site's* object id (the id data placement assigns homes to).
  /// Empty for non-memory operations.
  std::vector<std::vector<std::vector<int32_t>>> AccessObj;

  /// Clears the trace and sizes AccessObj for \p P. The interpreter calls
  /// this at the start of a traced run.
  void reset(const Program &P);

  uint64_t numBlockEvents() const { return Blocks.size(); }
  uint64_t numAccessEvents() const;
};

} // namespace gdp

#endif // GDP_PROFILE_EXECTRACE_H
