file(REMOVE_RECURSE
  "libgdp_opt.a"
)
