//===- partition/AccessMerge.cpp - Access-pattern coarsening ----------------===//

#include "partition/AccessMerge.h"

#include "ir/Program.h"

#include <algorithm>
#include <map>

using namespace gdp;

AccessMerge::AccessMerge(const ProgramGraph &PG, const Program &P,
                         MergePolicy Policy) {
  unsigned NumNodes = PG.getNumNodes();
  unsigned NumObjects = P.getNumObjects();
  // Combined id space: nodes first, then objects.
  UnionFind UF(NumNodes + NumObjects);

  if (Policy != MergePolicy::None) {
    for (unsigned N = 0; N != NumNodes; ++N) {
      const Operation *Op = PG.getOp(N);
      if (!Op)
        continue;
      for (int Obj : Op->getAccessSet())
        UF.merge(N, NumNodes + static_cast<unsigned>(Obj));
    }
  }

  if (Policy == MergePolicy::AccessPatternAndDependence &&
      !PG.edges().empty()) {
    // Hot-edge threshold: upper quartile of edge weights.
    std::vector<uint64_t> Weights;
    Weights.reserve(PG.edges().size());
    for (const auto &E : PG.edges())
      Weights.push_back(E.W);
    std::sort(Weights.begin(), Weights.end());
    uint64_t Threshold = Weights[Weights.size() * 3 / 4];
    for (const auto &E : PG.edges())
      if (E.W >= Threshold && E.W > 1)
        UF.merge(E.A, E.B);
  }

  // Dense group numbering, ordered by smallest member id for determinism.
  std::map<unsigned, unsigned> RootToGroup;
  GroupOfNode.resize(NumNodes);
  GroupOfObject.resize(NumObjects);
  auto GroupOf = [&](unsigned Id) {
    unsigned Root = UF.find(Id);
    auto [It, Inserted] = RootToGroup.emplace(Root, NumGroups);
    if (Inserted)
      ++NumGroups;
    return It->second;
  };
  for (unsigned N = 0; N != NumNodes; ++N)
    GroupOfNode[N] = GroupOf(N);
  for (unsigned O = 0; O != NumObjects; ++O)
    GroupOfObject[O] = GroupOf(NumNodes + O);

  ObjectsOf.resize(NumGroups);
  NodesOf.resize(NumGroups);
  for (unsigned N = 0; N != NumNodes; ++N)
    NodesOf[GroupOfNode[N]].push_back(N);
  for (unsigned O = 0; O != NumObjects; ++O)
    ObjectsOf[GroupOfObject[O]].push_back(static_cast<int>(O));
}

std::vector<std::vector<int>> AccessMerge::objectClasses() const {
  std::vector<std::vector<int>> Classes;
  for (const auto &Objs : ObjectsOf)
    if (!Objs.empty())
      Classes.push_back(Objs);
  return Classes;
}
