//===- tests/SupportTests.cpp - Support library unit tests -------------------===//

#include "support/Histogram.h"
#include "support/Random.h"
#include "support/StrUtil.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace gdp;

// --- Random ---------------------------------------------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random A(1), B(2);
  unsigned Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4u);
}

TEST(RandomTest, NextBelowInRange) {
  Random R(7);
  for (uint64_t Bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(RandomTest, NextBelowOneAlwaysZero) {
  Random R(9);
  for (int I = 0; I != 16; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(RandomTest, NextInRangeInclusive) {
  Random R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random R(13);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, NextBoolProbabilityExtremes) {
  Random R(17);
  for (int I = 0; I != 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(RandomTest, NextBoolRoughlyFair) {
  Random R(19);
  int Heads = 0;
  for (int I = 0; I != 10000; ++I)
    Heads += R.nextBool(0.5);
  EXPECT_GT(Heads, 4500);
  EXPECT_LT(Heads, 5500);
}

TEST(RandomTest, ReseedRestartsStream) {
  Random R(5);
  uint64_t First = R.next();
  R.next();
  R.reseed(5);
  EXPECT_EQ(R.next(), First);
}

TEST(RandomTest, UniformityAcrossBuckets) {
  Random R(23);
  std::map<uint64_t, unsigned> Counts;
  constexpr unsigned N = 8000;
  for (unsigned I = 0; I != N; ++I)
    ++Counts[R.nextBelow(8)];
  for (const auto &[Bucket, Count] : Counts) {
    EXPECT_GT(Count, N / 8 - N / 32) << "bucket " << Bucket;
    EXPECT_LT(Count, N / 8 + N / 32) << "bucket " << Bucket;
  }
}

// --- UnionFind --------------------------------------------------------------

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind UF(5);
  EXPECT_EQ(UF.numSets(), 5u);
  for (unsigned I = 0; I != 5; ++I)
    EXPECT_EQ(UF.find(I), I);
}

TEST(UnionFindTest, MergeConnects) {
  UnionFind UF(4);
  UF.merge(0, 1);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_FALSE(UF.connected(0, 2));
  EXPECT_EQ(UF.numSets(), 3u);
}

TEST(UnionFindTest, MergeIsTransitive) {
  UnionFind UF(6);
  UF.merge(0, 1);
  UF.merge(2, 3);
  UF.merge(1, 2);
  EXPECT_TRUE(UF.connected(0, 3));
  EXPECT_EQ(UF.numSets(), 3u);
}

TEST(UnionFindTest, SelfMergeIsNoop) {
  UnionFind UF(3);
  UF.merge(1, 1);
  EXPECT_EQ(UF.numSets(), 3u);
}

TEST(UnionFindTest, GrowPreservesExistingSets) {
  UnionFind UF(2);
  UF.merge(0, 1);
  UF.grow(4);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_FALSE(UF.connected(0, 3));
  EXPECT_EQ(UF.numSets(), 3u);
}

TEST(UnionFindTest, GroupsCoverAllIds) {
  UnionFind UF(7);
  UF.merge(0, 3);
  UF.merge(3, 6);
  UF.merge(1, 2);
  auto Groups = UF.groups();
  unsigned Total = 0;
  for (const auto &G : Groups)
    Total += static_cast<unsigned>(G.size());
  EXPECT_EQ(Total, 7u);
  // Members are sorted within groups.
  for (const auto &G : Groups)
    EXPECT_TRUE(std::is_sorted(G.begin(), G.end()));
}

TEST(UnionFindTest, LargeChain) {
  constexpr unsigned N = 1000;
  UnionFind UF(N);
  for (unsigned I = 0; I + 1 != N; ++I)
    UF.merge(I, I + 1);
  EXPECT_EQ(UF.numSets(), 1u);
  EXPECT_TRUE(UF.connected(0, N - 1));
}

// --- StrUtil ----------------------------------------------------------------

TEST(StrUtilTest, FormatStrBasics) {
  EXPECT_EQ(formatStr("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatStr("empty"), "empty");
}

TEST(StrUtilTest, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcde", 4), "abcde");
}

TEST(StrUtilTest, FormatDoubleAndPercent) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatPercent(0.956, 1), "95.6%");
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(StrUtilTest, TextTableAlignsColumns) {
  TextTable T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "23"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // Numbers are right-aligned: "23" ends its line where " 1" does.
  EXPECT_NE(Out.find("23"), std::string::npos);
}

// --- Stats / Histogram -------------------------------------------------------

TEST(StatsTest, MeanMinMax) {
  Stats S;
  S.add(2);
  S.add(4);
  S.add(6);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 4.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 6.0);
}

TEST(StatsTest, Geomean) {
  Stats S;
  S.add(1);
  S.add(100);
  EXPECT_NEAR(S.geomean(), 10.0, 1e-9);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram H(0.0, 1.0, 4);
  H.add(0.1);  // bucket 0
  H.add(0.3);  // bucket 1
  H.add(0.9);  // bucket 3
  H.add(-5.0); // clamps to 0
  H.add(7.0);  // clamps to 3
  EXPECT_EQ(H.totalCount(), 5u);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 0u);
  EXPECT_EQ(H.bucketCount(3), 2u);
  EXPECT_DOUBLE_EQ(H.bucketLo(2), 0.5);
}
