//===- analysis/CFG.cpp - Control-flow graph utilities ---------------------===//

#include "analysis/CFG.h"

#include "ir/Function.h"

using namespace gdp;

CFG::CFG(const Function &F) {
  unsigned N = F.getNumBlocks();
  Succs.resize(N);
  Preds.resize(N);
  Reachable.assign(N, false);

  for (unsigned B = 0; B != N; ++B) {
    Succs[B] = F.getBlock(B).successorIds();
    for (int S : Succs[B])
      Preds[static_cast<unsigned>(S)].push_back(static_cast<int>(B));
  }

  // Iterative post-order DFS from the entry.
  std::vector<int> PostOrder;
  PostOrder.reserve(N);
  if (N != 0) {
    std::vector<std::pair<int, unsigned>> Stack; // (block, next succ index)
    Reachable[0] = true;
    Stack.push_back({0, 0});
    while (!Stack.empty()) {
      auto &[Block, NextSucc] = Stack.back();
      const auto &BS = Succs[static_cast<unsigned>(Block)];
      if (NextSucc < BS.size()) {
        int S = BS[NextSucc++];
        if (!Reachable[static_cast<unsigned>(S)]) {
          Reachable[static_cast<unsigned>(S)] = true;
          Stack.push_back({S, 0});
        }
      } else {
        PostOrder.push_back(Block);
        Stack.pop_back();
      }
    }
  }

  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned B = 0; B != N; ++B)
    if (!Reachable[B])
      RPO.push_back(static_cast<int>(B));
}
