//===- ir/BasicBlock.cpp - Straight-line operation sequence ---------------===//

#include "ir/BasicBlock.h"

using namespace gdp;

Operation *BasicBlock::append(std::unique_ptr<Operation> Op) {
  assert(Op && "cannot append a null operation");
  Op->setParent(this);
  Ops.push_back(std::move(Op));
  return Ops.back().get();
}

void BasicBlock::removeOp(unsigned I) {
  assert(I < Ops.size() && "operation index out of range");
  Ops.erase(Ops.begin() + I);
}

const Operation *BasicBlock::getTerminator() const {
  if (Ops.empty())
    return nullptr;
  const Operation *Last = Ops.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

std::vector<int> BasicBlock::successorIds() const {
  std::vector<int> Result;
  const Operation *Term = getTerminator();
  if (!Term)
    return Result;
  switch (Term->getOpcode()) {
  case Opcode::Br:
    Result.push_back(Term->getTarget(0));
    break;
  case Opcode::BrCond:
    Result.push_back(Term->getTarget(0));
    if (Term->getTarget(1) != Term->getTarget(0))
      Result.push_back(Term->getTarget(1));
    break;
  default:
    break; // Ret: no successors.
  }
  return Result;
}
