//===- support/Budget.h - Resource budgets and cancellation -----*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit resource budgets for the search-shaped parts of the pipeline
/// (docs/ROBUSTNESS.md): a `Budget` bounds a computation by wall clock,
/// node count and/or an absolute deadline, and carries an optional
/// cooperative `CancelToken` so concurrent workers stop promptly once any
/// of them exhausts the budget. Budgeted entry points return their
/// best-so-far result plus a `BudgetExhausted` diagnostic instead of
/// running unbounded or failing — the graceful-degradation counterpart for
/// compute (related partitioners run under the same discipline: Moreira et
/// al., Feldman et al., see PAPERS.md).
///
/// A `BudgetMeter` tracks consumption. Node charges are exact; the wall
/// clock and deadline are polled on every charge (one steady_clock read),
/// which the chunked callers amortize by charging in batches. NodeLimit
/// checks are deterministic for serial callers; wall-clock limits are
/// inherently timing-dependent and excluded from the determinism contract
/// (docs/PARALLELISM.md).
///
//===----------------------------------------------------------------------===//

#ifndef GDP_SUPPORT_BUDGET_H
#define GDP_SUPPORT_BUDGET_H

#include "support/Status.h"

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gdp {
namespace support {

/// Cooperative cancellation flag shared between a controller and workers.
/// Workers poll `cancelled()` at loop boundaries; nothing is interrupted
/// preemptively, so a poisoned or slow task can never wedge its siblings —
/// they observe the flag at their next check and wind down.
class CancelToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }
  void reset() { Flag.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// Bounds for one budgeted computation. Default-constructed = unlimited.
struct Budget {
  /// Wall-clock limit in milliseconds from the meter's start. 0 = none.
  double WallMsLimit = 0;
  /// Maximum nodes (search points, iterations) to evaluate. 0 = none.
  uint64_t NodeLimit = 0;
  /// Absolute deadline; time_point{} (the epoch) = none.
  std::chrono::steady_clock::time_point Deadline{};
  /// Optional cancellation token checked alongside the limits; exhausting
  /// any limit also trips it so sibling workers stop promptly.
  CancelToken *Cancel = nullptr;

  bool hasDeadline() const {
    return Deadline != std::chrono::steady_clock::time_point{};
  }
  bool unlimited() const {
    return WallMsLimit <= 0 && NodeLimit == 0 && !hasDeadline() &&
           Cancel == nullptr;
  }
};

/// Tracks consumption against one Budget. Thread-safe: concurrent workers
/// may charge the same meter; exhaustion is sticky.
class BudgetMeter {
public:
  /// Starts the wall clock now. The meter keeps a copy of \p B (but not of
  /// the token it points to, which must outlive the meter).
  explicit BudgetMeter(const Budget &B);

  /// Records \p Nodes more units of work and re-checks every limit.
  /// Returns true while the budget still has room; false once exhausted
  /// (sticky — every later call also returns false).
  bool charge(uint64_t Nodes = 1);

  /// True once any limit tripped (or the token was cancelled externally).
  bool exhausted() const { return Exhausted.load(std::memory_order_relaxed); }

  /// Total nodes charged so far.
  uint64_t consumed() const { return Nodes.load(std::memory_order_relaxed); }

  /// Elapsed wall clock since construction, in milliseconds.
  double elapsedMs() const;

  /// Milliseconds left before the wall limit or absolute deadline trips —
  /// whichever is sooner. Infinity when neither is set; 0 once exhausted
  /// (by any limit or cancellation). The serving retry loop uses this to
  /// refuse a backoff sleep that could not finish inside the request's
  /// deadline.
  double remainingMs() const;

  /// The limit that tripped, as a diagnostic attributable to \p Site
  /// (BudgetExhausted, or Cancelled when only the token fired). Only
  /// meaningful once exhausted().
  Diag diag(const std::string &Site) const;

private:
  Budget B;
  std::chrono::steady_clock::time_point Start;
  std::atomic<uint64_t> Nodes{0};
  std::atomic<bool> Exhausted{false};
  std::atomic<int> TrippedBy{0}; ///< 0 none, 1 nodes, 2 wall, 3 deadline,
                                 ///< 4 external cancellation.
};

} // namespace support
} // namespace gdp

#endif // GDP_SUPPORT_BUDGET_H
