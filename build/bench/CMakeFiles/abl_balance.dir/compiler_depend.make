# Empty compiler generated dependencies file for abl_balance.
# This may be replaced when dependencies are built.
