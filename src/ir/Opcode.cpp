//===- ir/Opcode.cpp - Operation opcodes and properties -------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace gdp;

const char *gdp::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::AShr:
    return "ashr";
  case Opcode::LShr:
    return "lshr";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  case Opcode::Abs:
    return "abs";
  case Opcode::Select:
    return "select";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FNeg:
    return "fneg";
  case Opcode::FAbs:
    return "fabs";
  case Opcode::FMin:
    return "fmin";
  case Opcode::FMax:
    return "fmax";
  case Opcode::FCmpEQ:
    return "fcmpeq";
  case Opcode::FCmpLT:
    return "fcmplt";
  case Opcode::FCmpLE:
    return "fcmple";
  case Opcode::ItoF:
    return "itof";
  case Opcode::FtoI:
    return "ftoi";
  case Opcode::MovI:
    return "movi";
  case Opcode::MovF:
    return "movf";
  case Opcode::Mov:
    return "mov";
  case Opcode::AddrOf:
    return "addrof";
  case Opcode::Load:
    return "ld";
  case Opcode::Store:
    return "st";
  case Opcode::Malloc:
    return "malloc";
  case Opcode::Br:
    return "br";
  case Opcode::BrCond:
    return "brcond";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::ICMove:
    return "icmove";
  }
  assert(false && "unknown opcode");
  return "<bad>";
}

FUKind gdp::opcodeFUKind(Opcode Op) {
  switch (Op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::FAbs:
  case Opcode::FMin:
  case Opcode::FMax:
  case Opcode::FCmpEQ:
  case Opcode::FCmpLT:
  case Opcode::FCmpLE:
  case Opcode::ItoF:
  case Opcode::FtoI:
    return FUKind::Float;
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::Malloc:
    return FUKind::Memory;
  case Opcode::Br:
  case Opcode::BrCond:
  case Opcode::Call:
  case Opcode::Ret:
    return FUKind::Branch;
  case Opcode::ICMove:
    return FUKind::Interconnect;
  default:
    return FUKind::Integer;
  }
}

int gdp::opcodeNumSrcs(Opcode Op) {
  switch (Op) {
  case Opcode::MovI:
  case Opcode::MovF:
  case Opcode::AddrOf:
  case Opcode::Br:
    return 0;
  case Opcode::Mov:
  case Opcode::ICMove:
  case Opcode::Abs:
  case Opcode::FNeg:
  case Opcode::FAbs:
  case Opcode::ItoF:
  case Opcode::FtoI:
  case Opcode::Load:
  case Opcode::BrCond:
  case Opcode::Malloc:
    return 1;
  case Opcode::Select:
    return 3;
  case Opcode::Call:
  case Opcode::Ret:
    return -1; // Variadic.
  case Opcode::Store:
    return 2; // Value, address.
  default:
    return 2;
  }
}

bool gdp::opcodeHasDest(Opcode Op) {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::BrCond:
  case Opcode::Ret:
    return false;
  case Opcode::Call:
    return true; // Optional in practice; Dest may still be -1.
  default:
    return true;
  }
}

bool gdp::opcodeIsMemoryAccess(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store;
}

bool gdp::opcodeReferencesMemory(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store || Op == Opcode::Malloc ||
         Op == Opcode::AddrOf;
}

bool gdp::opcodeIsTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::BrCond || Op == Opcode::Ret;
}

bool gdp::opcodeProducesFloat(Opcode Op) {
  switch (Op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::FAbs:
  case Opcode::FMin:
  case Opcode::FMax:
  case Opcode::ItoF:
  case Opcode::MovF:
    return true;
  default:
    return false;
  }
}
