//===- support/Telemetry.cpp - Telemetry facade -----------------------------===//

#include "support/Telemetry.h"

using namespace gdp;
using namespace gdp::telemetry;

std::atomic<TelemetrySession *> gdp::telemetry::detail::Current{nullptr};

TelemetrySession *gdp::telemetry::install(TelemetrySession *S) {
  return detail::Current.exchange(S, std::memory_order_acq_rel);
}
