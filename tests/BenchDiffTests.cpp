//===- tests/BenchDiffTests.cpp - bench_diff comparison tests ---------------===//
//
// Covers bench/BenchDiff.h: flattening of both benchmark JSON schemas,
// the regression rule (strictly worse than baseline * (1 + tolerance)),
// per-metric tolerance overrides, missing/new record handling, the
// newly-failed status rule, and error reporting on malformed input. The
// CLI exit-code contract of the bench_diff binary is asserted by ctest
// entries (tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchDiff.h"

#include <gtest/gtest.h>

using namespace gdp::bench;

namespace {

std::string benchFile(uint64_t Cycles, uint64_t Moves,
                      const char *Status = "ok") {
  std::string S = "{\n  \"schema\": \"gdp-bench-v1\",\n  \"records\": [\n";
  S += "    {\"benchmark\": \"fir\", \"strategy\": \"GDP\", "
       "\"move_latency\": 5, \"cycles\": " +
       std::to_string(Cycles) +
       ", \"dynamic_moves\": " + std::to_string(Moves) +
       ", \"status\": \"" + Status + "\"}\n  ]\n}\n";
  return S;
}

TEST(BenchDiff, IdenticalFilesCompareClean) {
  std::string F = benchFile(1000, 50);
  DiffResult R = diffBenchJson(F, F, DiffOptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.regressed());
  EXPECT_EQ(R.Regressions, 0u);
  EXPECT_EQ(R.Deltas.size(), 2u); // cycles + dynamic_moves
  EXPECT_TRUE(R.MissingInCurrent.empty());
  EXPECT_TRUE(R.NewInCurrent.empty());
}

TEST(BenchDiff, RegressionPastToleranceFlagged) {
  DiffOptions Opt;
  Opt.DefaultTolerance = 0.05;
  // +4.9% passes, +5.1% fails: the boundary is baseline * 1.05.
  DiffResult Pass =
      diffBenchJson(benchFile(1000, 50), benchFile(1049, 50), Opt);
  ASSERT_TRUE(Pass.Ok);
  EXPECT_FALSE(Pass.regressed());
  DiffResult Fail =
      diffBenchJson(benchFile(1000, 50), benchFile(1051, 50), Opt);
  ASSERT_TRUE(Fail.Ok);
  EXPECT_TRUE(Fail.regressed());
  ASSERT_EQ(Fail.Regressions, 1u);
  const MetricDelta *Bad = nullptr;
  for (const MetricDelta &D : Fail.Deltas)
    if (D.Regressed)
      Bad = &D;
  ASSERT_TRUE(Bad);
  EXPECT_EQ(Bad->Metric, "cycles");
  EXPECT_EQ(Bad->Baseline, 1000);
  EXPECT_EQ(Bad->Current, 1051);
}

TEST(BenchDiff, ImprovementNeverRegresses) {
  DiffResult R =
      diffBenchJson(benchFile(1000, 50), benchFile(900, 10), DiffOptions());
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.regressed());
  for (const MetricDelta &D : R.Deltas)
    EXPECT_TRUE(D.Improved);
}

TEST(BenchDiff, PerMetricToleranceOverridesDefault) {
  DiffOptions Opt;
  Opt.DefaultTolerance = 0;
  Opt.MetricTolerance["cycles"] = 0.10;
  // cycles +8% is inside its override; dynamic_moves +1 violates the
  // zero default.
  DiffResult R =
      diffBenchJson(benchFile(1000, 50), benchFile(1080, 51), Opt);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Regressions, 1u);
  for (const MetricDelta &D : R.Deltas)
    EXPECT_EQ(D.Regressed, D.Metric == "dynamic_moves") << D.Metric;
}

TEST(BenchDiff, ZeroBaselineOnlyToleratesZero) {
  // Relative tolerance is meaningless on a 0 baseline: any nonzero
  // current is a regression, zero is clean.
  DiffOptions Opt;
  Opt.DefaultTolerance = 0.5;
  DiffResult Clean =
      diffBenchJson(benchFile(1000, 0), benchFile(1000, 0), Opt);
  ASSERT_TRUE(Clean.Ok);
  EXPECT_FALSE(Clean.regressed());
  DiffResult Dirty =
      diffBenchJson(benchFile(1000, 0), benchFile(1000, 1), Opt);
  ASSERT_TRUE(Dirty.Ok);
  EXPECT_TRUE(Dirty.regressed());
}

TEST(BenchDiff, MissingRecordGatesUnlessAllowed) {
  const char *Empty =
      "{\"schema\": \"gdp-bench-v1\", \"records\": []}";
  DiffResult Strict =
      diffBenchJson(benchFile(1000, 50), Empty, DiffOptions());
  ASSERT_TRUE(Strict.Ok);
  EXPECT_TRUE(Strict.regressed());
  ASSERT_EQ(Strict.MissingInCurrent.size(), 1u);
  EXPECT_EQ(Strict.MissingInCurrent[0], "fir|GDP|lat5");

  DiffOptions Allow;
  Allow.AllowMissing = true;
  DiffResult Lax = diffBenchJson(benchFile(1000, 50), Empty, Allow);
  ASSERT_TRUE(Lax.Ok);
  EXPECT_FALSE(Lax.regressed());
  EXPECT_EQ(Lax.MissingInCurrent.size(), 1u);
}

TEST(BenchDiff, NewRecordsReportedNotGated) {
  const char *Empty =
      "{\"schema\": \"gdp-bench-v1\", \"records\": []}";
  DiffResult R = diffBenchJson(Empty, benchFile(1000, 50), DiffOptions());
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.regressed());
  ASSERT_EQ(R.NewInCurrent.size(), 1u);
  EXPECT_EQ(R.NewInCurrent[0], "fir|GDP|lat5");
}

TEST(BenchDiff, NewlyFailedRunIsARegression) {
  DiffResult R = diffBenchJson(benchFile(1000, 50),
                               benchFile(1000, 50, "failed"), DiffOptions());
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.regressed());
  ASSERT_EQ(R.Deltas.size(), 1u);
  EXPECT_EQ(R.Deltas[0].Metric, "status");
  // A baseline that already failed doesn't re-flag (and its metrics
  // still compare, catching a failed run that also got slower).
  DiffResult Same = diffBenchJson(benchFile(1000, 50, "failed"),
                                  benchFile(1000, 50, "failed"),
                                  DiffOptions());
  ASSERT_TRUE(Same.Ok);
  EXPECT_FALSE(Same.regressed());
}

TEST(BenchDiff, SimRecordsKeyedSeparately) {
  // A record carrying sim_cycles keys with a |sim suffix, so static-only
  // and simulated evaluations of the same point never cross-compare.
  const char *Sim =
      "{\"schema\": \"gdp-bench-v1\", \"records\": ["
      "{\"benchmark\": \"fir\", \"strategy\": \"GDP\", \"move_latency\": 5,"
      " \"cycles\": 1000, \"sim_cycles\": 1010}]}";
  DiffResult R = diffBenchJson(Sim, Sim, DiffOptions());
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.regressed());
  DiffResult Cross = diffBenchJson(Sim, benchFile(1000, 50), DiffOptions());
  ASSERT_TRUE(Cross.Ok);
  ASSERT_EQ(Cross.MissingInCurrent.size(), 1u);
  EXPECT_EQ(Cross.MissingInCurrent[0], "fir|GDP|lat5|sim");
}

TEST(BenchDiff, CompileSpeedSchemaComparesWallSeconds) {
  auto File = [](double Wall) {
    return std::string("{\"schema\": \"gdp-compile-speed-v1\", "
                       "\"workloads\": [{\"workload\": \"fir\", "
                       "\"workload_wall_sec\": ") +
           std::to_string(Wall) + "}]}";
  };
  DiffOptions Opt;
  Opt.MetricTolerance["workload_wall_sec"] = 1.0; // +100%
  DiffResult Pass = diffBenchJson(File(0.5), File(0.9), Opt);
  ASSERT_TRUE(Pass.Ok);
  EXPECT_FALSE(Pass.regressed());
  DiffResult Fail = diffBenchJson(File(0.5), File(1.5), Opt);
  ASSERT_TRUE(Fail.Ok);
  EXPECT_TRUE(Fail.regressed());
}

TEST(BenchDiff, MalformedInputReportsError) {
  std::string Good = benchFile(1000, 50);
  DiffResult BadJson = diffBenchJson("{not json", Good, DiffOptions());
  EXPECT_FALSE(BadJson.Ok);
  EXPECT_NE(BadJson.Error.find("baseline"), std::string::npos);
  DiffResult BadSchema = diffBenchJson(
      Good, "{\"schema\": \"wat-v9\", \"records\": []}", DiffOptions());
  EXPECT_FALSE(BadSchema.Ok);
  EXPECT_NE(BadSchema.Error.find("unknown schema"), std::string::npos);
  DiffResult NoSchema = diffBenchJson(Good, "{}", DiffOptions());
  EXPECT_FALSE(NoSchema.Ok);
}

TEST(BenchDiff, ReportRendersRegressionsAndSummary) {
  DiffResult R =
      diffBenchJson(benchFile(1000, 50), benchFile(2000, 50), DiffOptions());
  ASSERT_TRUE(R.Ok);
  std::string Report = renderDiffReport(R, /*Verbose=*/false);
  EXPECT_NE(Report.find("REGRESSION"), std::string::npos);
  EXPECT_NE(Report.find("cycles 1000 -> 2000"), std::string::npos);
  EXPECT_NE(Report.find("1 regressions"), std::string::npos);
  // Non-verbose drops the clean dynamic_moves line; verbose keeps it.
  EXPECT_EQ(Report.find("dynamic_moves"), std::string::npos);
  std::string Full = renderDiffReport(R, /*Verbose=*/true);
  EXPECT_NE(Full.find("dynamic_moves"), std::string::npos);
}

} // namespace
