//===- graph/GainBucket.h - Addressable max-gain move queue -----*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The priority structure behind bucket-based FM refinement: each free
/// node holds at most one candidate move (its best destination part and
/// the cut gain of going there), and the refiner repeatedly extracts the
/// most attractive candidate, applies it, and updates the neighbors'
/// entries in place. Edge weights here are arbitrary 64-bit values, so a
/// classical array-of-buckets indexed by gain is impossible; an ordered
/// set with a per-node handle gives the same O(log n) insert / update /
/// extract with strict deterministic ordering: higher gain first, then
/// smaller destination part, then smaller node id.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_GRAPH_GAINBUCKET_H
#define GDP_GRAPH_GAINBUCKET_H

#include "support/Arena.h"

#include <cstddef>
#include <cstdint>
#include <set>

namespace gdp {

/// Addressable priority queue of candidate moves, one per node.
class GainBucket {
public:
  struct Entry {
    int64_t Gain;
    unsigned Part; ///< Destination part of the candidate move.
    unsigned Node;
  };

  /// Handle tables on \p A when given (heap otherwise). The ordered set
  /// itself always uses the heap: its erase/insert churn across a pass
  /// needs real frees, which a bump arena would turn into growth
  /// proportional to total moves instead of live entries.
  explicit GainBucket(support::Arena *A = nullptr)
      : Handle(A), Present(A) {}

  /// Empties the queue and sizes the handle table for \p NumNodes nodes.
  void reset(unsigned NumNodes);

  /// Inserts the candidate move of \p Node, or replaces its current one.
  void insertOrUpdate(unsigned Node, unsigned Part, int64_t Gain);

  /// Removes \p Node's candidate if present.
  void erase(unsigned Node);

  bool contains(unsigned Node) const {
    return Node < Present.size() && Present[Node];
  }

  bool empty() const { return Set.empty(); }
  size_t size() const { return Set.size(); }

  /// Best candidate: highest gain, ties to smaller part id, then smaller
  /// node id. Precondition: !empty().
  const Entry &top() const { return *Set.begin(); }

private:
  struct Compare {
    bool operator()(const Entry &A, const Entry &B) const {
      if (A.Gain != B.Gain)
        return A.Gain > B.Gain;
      if (A.Part != B.Part)
        return A.Part < B.Part;
      return A.Node < B.Node;
    }
  };

  std::set<Entry, Compare> Set;
  support::ArenaVector<Entry> Handle;    ///< Per-node key currently in Set.
  support::ArenaVector<uint8_t> Present; ///< Whether Handle[n] is live.
};

} // namespace gdp

#endif // GDP_GRAPH_GAINBUCKET_H
