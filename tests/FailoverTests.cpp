//===- tests/FailoverTests.cpp - Retry/backoff/breaker unit tests -----------===//
//
// The fault-tolerance primitives of serve/Failover.h, exercised without
// sockets or sleeps: backoff schedules must be a pure function of
// (seed, attempt) — byte-identical at any thread count, the property the
// serving determinism contract leans on — and the circuit breaker must
// walk its full Closed → Open → HalfOpen → {Closed, Open} cycle under a
// caller-driven clock. The retryable/final status split (Wire.h) is
// pinned here too: it decides which failures fail over and which return
// to the client untouched (docs/SERVING.md, "Failure semantics").
//
//===----------------------------------------------------------------------===//

#include "serve/Failover.h"
#include "serve/Wire.h"

#include "gtest/gtest.h"

#include <thread>
#include <vector>

using namespace gdp;
using namespace gdp::serve;

namespace {

//===----------------------------------------------------------------------===//
// BackoffSchedule
//===----------------------------------------------------------------------===//

TEST(Backoff, PureFunctionOfSeedAndAttempt) {
  RetryPolicy P;
  BackoffSchedule A(P, 0xdeadbeefULL);
  BackoffSchedule B(P, 0xdeadbeefULL);
  for (unsigned Try = 0; Try != 8; ++Try) {
    // Same inputs, same delay — across instances and across repeated
    // queries of the same instance, in any order.
    EXPECT_EQ(A.delayMs(Try), B.delayMs(Try));
    EXPECT_EQ(A.delayMs(7 - Try), B.delayMs(7 - Try));
  }
  // A different seed jitters differently (with overwhelming probability
  // for this fixed pair).
  BackoffSchedule C(P, 0xfeedface00ULL);
  bool AnyDiffer = false;
  for (unsigned Try = 0; Try != 8 && !AnyDiffer; ++Try)
    AnyDiffer = A.delayMs(Try) != C.delayMs(Try);
  EXPECT_TRUE(AnyDiffer);
}

TEST(Backoff, ExponentialEnvelopeAndJitterBounds) {
  RetryPolicy P;
  P.BaseDelayMs = 5;
  P.MaxDelayMs = 200;
  P.JitterFrac = 0.5;
  BackoffSchedule S(P, 42);
  for (unsigned Try = 0; Try != 12; ++Try) {
    double Exp = P.BaseDelayMs;
    for (unsigned K = 0; K != Try && Exp < P.MaxDelayMs; ++K)
      Exp *= 2;
    if (Exp > P.MaxDelayMs)
      Exp = P.MaxDelayMs;
    double D = S.delayMs(Try);
    EXPECT_GE(D, Exp * (1.0 - P.JitterFrac)) << "attempt " << Try;
    EXPECT_LE(D, Exp) << "attempt " << Try;
  }
}

TEST(Backoff, NoJitterMeansExactExponential) {
  RetryPolicy P;
  P.BaseDelayMs = 10;
  P.MaxDelayMs = 80;
  P.JitterFrac = 0;
  BackoffSchedule S(P, 7);
  EXPECT_EQ(S.delayMs(0), 10);
  EXPECT_EQ(S.delayMs(1), 20);
  EXPECT_EQ(S.delayMs(2), 40);
  EXPECT_EQ(S.delayMs(3), 80);
  EXPECT_EQ(S.delayMs(4), 80); // Capped.
}

TEST(Backoff, ByteIdenticalAcrossThreadCounts) {
  // The serving determinism contract: the schedule a request follows
  // depends only on its routing hash, not on which worker computes it or
  // how many workers run. Compute 64 schedules serially, then with 2 and
  // 8 threads carving the same index space, and demand exact equality.
  RetryPolicy P;
  constexpr unsigned Seeds = 64, Attempts = 6;
  auto Compute = [&](unsigned Threads) {
    std::vector<double> Out(Seeds * Attempts);
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] {
        for (unsigned I = T; I < Seeds; I += Threads) {
          BackoffSchedule S(P, 0x9e3779b9ULL * (I + 1));
          for (unsigned A = 0; A != Attempts; ++A)
            Out[I * Attempts + A] = S.delayMs(A);
        }
      });
    for (auto &Th : Pool)
      Th.join();
    return Out;
  };
  std::vector<double> One = Compute(1), Two = Compute(2), Eight = Compute(8);
  EXPECT_EQ(One, Two);
  EXPECT_EQ(One, Eight);
}

//===----------------------------------------------------------------------===//
// CircuitBreaker
//===----------------------------------------------------------------------===//

TEST(Breaker, OpensAfterConsecutiveFailures) {
  BreakerOptions O;
  O.FailureThreshold = 3;
  O.OpenCooldownMs = 1000;
  CircuitBreaker B(O);
  EXPECT_EQ(B.allow(0), CircuitBreaker::Decision::Allow);
  EXPECT_EQ(B.onFailure(1), CircuitBreaker::Transition::None);
  EXPECT_EQ(B.onFailure(2), CircuitBreaker::Transition::None);
  EXPECT_EQ(B.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(B.onFailure(3), CircuitBreaker::Transition::Opened);
  EXPECT_EQ(B.state(), CircuitBreaker::State::Open);
  // Open: rejected without touching the shard, until the cooldown.
  EXPECT_EQ(B.allow(4), CircuitBreaker::Decision::Reject);
  EXPECT_EQ(B.allow(1002), CircuitBreaker::Decision::Reject);
}

TEST(Breaker, SuccessResetsTheStreak) {
  BreakerOptions O;
  O.FailureThreshold = 3;
  CircuitBreaker B(O);
  B.onFailure(1);
  B.onFailure(2);
  EXPECT_EQ(B.onSuccess(), CircuitBreaker::Transition::None);
  // Two more failures are a fresh streak, still under the threshold.
  B.onFailure(3);
  B.onFailure(4);
  EXPECT_EQ(B.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(B.onFailure(5), CircuitBreaker::Transition::Opened);
}

TEST(Breaker, CooldownAdmitsExactlyOneProbe) {
  BreakerOptions O;
  O.FailureThreshold = 1;
  O.OpenCooldownMs = 100;
  CircuitBreaker B(O);
  EXPECT_EQ(B.onFailure(0), CircuitBreaker::Transition::Opened);
  EXPECT_EQ(B.allow(50), CircuitBreaker::Decision::Reject);
  // Cooldown elapsed: the first caller becomes the half-open probe, every
  // concurrent caller is still rejected until the probe resolves.
  EXPECT_EQ(B.allow(100), CircuitBreaker::Decision::Probe);
  EXPECT_EQ(B.state(), CircuitBreaker::State::HalfOpen);
  EXPECT_EQ(B.allow(101), CircuitBreaker::Decision::Reject);
  EXPECT_EQ(B.allow(150), CircuitBreaker::Decision::Reject);
  // Probe success closes; traffic flows again.
  EXPECT_EQ(B.onSuccess(), CircuitBreaker::Transition::Closed);
  EXPECT_EQ(B.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(B.allow(151), CircuitBreaker::Decision::Allow);
}

TEST(Breaker, FailedProbeReopensWithFreshCooldown) {
  BreakerOptions O;
  O.FailureThreshold = 1;
  O.OpenCooldownMs = 100;
  CircuitBreaker B(O);
  B.onFailure(0);
  ASSERT_EQ(B.allow(100), CircuitBreaker::Decision::Probe);
  EXPECT_EQ(B.onFailure(105), CircuitBreaker::Transition::Opened);
  EXPECT_EQ(B.state(), CircuitBreaker::State::Open);
  // The cooldown restarts from the failed probe, not the original trip.
  EXPECT_EQ(B.allow(150), CircuitBreaker::Decision::Reject);
  EXPECT_EQ(B.allow(204), CircuitBreaker::Decision::Reject);
  EXPECT_EQ(B.allow(205), CircuitBreaker::Decision::Probe);
  EXPECT_EQ(B.onSuccess(), CircuitBreaker::Transition::Closed);
}

//===----------------------------------------------------------------------===//
// Retryable/final status split
//===----------------------------------------------------------------------===//

TEST(RetryClass, TransientStatusesRetryFinalOnesDoNot) {
  // Transient: another replica (or a later attempt) can answer.
  EXPECT_TRUE(retryableStatus(Status::Overloaded));
  EXPECT_TRUE(retryableStatus(Status::ShuttingDown));
  EXPECT_TRUE(retryableStatus(Status::Unavailable));
  EXPECT_TRUE(retryableStatus(Status::InternalError));
  // Final: the request itself is the problem (or it succeeded) — a
  // different replica would answer identically, so failover would only
  // burn the deadline.
  EXPECT_FALSE(retryableStatus(Status::Ok));
  EXPECT_FALSE(retryableStatus(Status::BadRequest));
  EXPECT_FALSE(retryableStatus(Status::InputError));
  EXPECT_FALSE(retryableStatus(Status::EvalFailed));
  EXPECT_FALSE(retryableStatus(Status::DeadlineExceeded));
}

} // namespace
