//===- bench/BenchDiff.cpp - Benchmark record comparison --------------------===//

#include "bench/BenchDiff.h"

#include "support/Json.h"
#include "support/StrUtil.h"

#include <cmath>

using namespace gdp;
using namespace gdp::bench;
using gdp::support::json::JVal;

namespace {

/// Deterministic gdp-bench-v1 metrics worth gating on. Wall-clock fields
/// (*_sec) are deliberately absent: they are zeroed in deterministic
/// records and machine-dependent otherwise.
const char *const BenchMetrics[] = {
    "cycles",
    "dynamic_moves",
    "static_moves",
    "rhop_runs",
    "sim_cycles",
    "sim_bus_transfers",
    "sim_remote_accesses",
    "sim_stall_bus_contention",
    "sim_stall_move_latency",
    "sim_stall_mem_port",
    "evaluated_points",
};

/// One flattened record: its identity key, its comparable metrics, and
/// whether the run failed.
struct FlatRecord {
  std::map<std::string, double> Metrics;
  bool Failed = false;
};

std::string numKey(double V) {
  // move_latency is a small integer; render without a fraction.
  return formatStr("%g", V);
}

/// Flattens either schema into key -> FlatRecord. Returns false and sets
/// Error on unknown schema / malformed structure.
bool flatten(const JVal &Doc, std::map<std::string, FlatRecord> &Out,
             std::string &Error) {
  if (Doc.K != JVal::Object || !Doc.has("schema") ||
      Doc["schema"].K != JVal::String) {
    Error = "missing \"schema\" key";
    return false;
  }
  const std::string &Schema = Doc["schema"].Str;
  if (Schema == "gdp-bench-v1") {
    if (!Doc.has("records") || Doc["records"].K != JVal::Array) {
      Error = "gdp-bench-v1 file has no \"records\" array";
      return false;
    }
    for (const JVal &R : Doc["records"].Arr) {
      if (R.K != JVal::Object || !R.has("benchmark"))
        continue; // Tolerate partial records: they key off nothing.
      std::string Key = R["benchmark"].Str + "|" + R["strategy"].Str;
      if (R.has("move_latency"))
        Key += "|lat" + numKey(R["move_latency"].Num);
      if (R.has("sim_cycles"))
        Key += "|sim";
      FlatRecord &F = Out[Key];
      for (const char *M : BenchMetrics)
        if (R.has(M) && R[M].K == JVal::Number)
          F.Metrics[M] = R[M].Num;
      if (R.has("status") && R["status"].Str == "failed")
        F.Failed = true;
    }
    return true;
  }
  if (Schema == "gdp-compile-speed-v1") {
    if (!Doc.has("workloads") || Doc["workloads"].K != JVal::Array) {
      Error = "gdp-compile-speed-v1 file has no \"workloads\" array";
      return false;
    }
    for (const JVal &W : Doc["workloads"].Arr) {
      if (W.K != JVal::Object || !W.has("workload"))
        continue;
      FlatRecord &F = Out[W["workload"].Str];
      if (W.has("workload_wall_sec"))
        F.Metrics["workload_wall_sec"] = W["workload_wall_sec"].Num;
    }
    return true;
  }
  if (Schema == "gdp-serve-v1") {
    // One record per file, keyed by cluster shape. Deterministic counts
    // only — throughput/latency are wall-clock (zeroed by the bench's
    // --deterministic mode) and never gated.
    std::string Key = "serve";
    if (Doc.has("shards"))
      Key += "|shards" + numKey(Doc["shards"].Num);
    if (Doc.has("clients"))
      Key += "|clients" + numKey(Doc["clients"].Num);
    FlatRecord &F = Out[Key];
    for (const char *M : {"requests", "ok", "failed", "cache_hits"})
      if (Doc.has(M) && Doc[M].K == JVal::Number)
        F.Metrics[M] = Doc[M].Num;
    if (F.Metrics.count("failed") && F.Metrics["failed"] > 0)
      F.Failed = true;
    return true;
  }
  if (Schema == "gdp-serve-chaos-v1") {
    // Availability under injected shard outages. Counts only (issued/ok
    // vary with wall clock between runs, so only hard failure signals
    // gate): lost requests, failed requests, missed post-recovery probes.
    std::string Key = "serve-chaos";
    if (Doc.has("shards"))
      Key += "|shards" + numKey(Doc["shards"].Num);
    if (Doc.has("replicas"))
      Key += "|replicas" + numKey(Doc["replicas"].Num);
    FlatRecord &F = Out[Key];
    for (const char *M : {"failed", "lost", "success_rate", "retries",
                          "failovers"})
      if (Doc.has(M) && Doc[M].K == JVal::Number)
        F.Metrics[M] = Doc[M].Num;
    if (Doc.has("post_recovery") && Doc["post_recovery"].K == JVal::Object) {
      const JVal &PR = Doc["post_recovery"];
      if (PR.has("requests") && PR.has("ok"))
        F.Metrics["post_recovery_missed"] =
            PR["requests"].Num - PR["ok"].Num;
    }
    if ((F.Metrics.count("failed") && F.Metrics["failed"] > 0) ||
        (F.Metrics.count("post_recovery_missed") &&
         F.Metrics["post_recovery_missed"] > 0))
      F.Failed = true;
    return true;
  }
  Error = "unknown schema \"" + Schema + "\"";
  return false;
}

} // namespace

DiffResult gdp::bench::diffBenchJson(const std::string &BaselineText,
                                     const std::string &CurrentText,
                                     const DiffOptions &Opt) {
  DiffResult Res;
  JVal Base, Cur;
  std::string Err;
  if (!support::json::parse(BaselineText, Base, Err)) {
    Res.Error = "baseline: " + Err;
    return Res;
  }
  if (!support::json::parse(CurrentText, Cur, Err)) {
    Res.Error = "current: " + Err;
    return Res;
  }
  std::map<std::string, FlatRecord> BaseRecs, CurRecs;
  if (!flatten(Base, BaseRecs, Err)) {
    Res.Error = "baseline: " + Err;
    return Res;
  }
  if (!flatten(Cur, CurRecs, Err)) {
    Res.Error = "current: " + Err;
    return Res;
  }
  Res.Ok = true;

  auto toleranceFor = [&Opt](const std::string &Metric) {
    auto It = Opt.MetricTolerance.find(Metric);
    return It == Opt.MetricTolerance.end() ? Opt.DefaultTolerance
                                           : It->second;
  };

  for (const auto &[Key, BF] : BaseRecs) {
    auto CIt = CurRecs.find(Key);
    if (CIt == CurRecs.end()) {
      Res.MissingInCurrent.push_back(Key);
      if (!Opt.AllowMissing)
        ++Res.Regressions;
      continue;
    }
    const FlatRecord &CF = CIt->second;
    if (CF.Failed && !BF.Failed) {
      MetricDelta D;
      D.Key = Key;
      D.Metric = "status";
      D.Regressed = true;
      Res.Deltas.push_back(D);
      ++Res.Regressions;
      continue;
    }
    for (const auto &[Metric, BaseV] : BF.Metrics) {
      auto MIt = CF.Metrics.find(Metric);
      if (MIt == CF.Metrics.end())
        continue; // Metric vanished (e.g. record degraded): status covers it.
      MetricDelta D;
      D.Key = Key;
      D.Metric = Metric;
      D.Baseline = BaseV;
      D.Current = MIt->second;
      D.Tolerance = toleranceFor(Metric);
      double Allowed = BaseV * (1.0 + D.Tolerance);
      D.Regressed = BaseV == 0 ? D.Current > 0 : D.Current > Allowed;
      D.Improved = D.Current < BaseV;
      if (D.Regressed)
        ++Res.Regressions;
      Res.Deltas.push_back(std::move(D));
    }
  }
  for (const auto &[Key, CF] : CurRecs)
    if (!BaseRecs.count(Key))
      Res.NewInCurrent.push_back(Key);
  return Res;
}

std::string gdp::bench::renderDiffReport(const DiffResult &R, bool Verbose) {
  if (!R.Ok)
    return "bench_diff: error: " + R.Error + "\n";
  std::string Out;
  unsigned Improvements = 0;
  for (const MetricDelta &D : R.Deltas) {
    if (D.Improved)
      ++Improvements;
    if (!D.Regressed && !Verbose)
      continue;
    const char *Tag = D.Regressed ? "REGRESSION" : (D.Improved ? "improved"
                                                              : "ok");
    if (D.Metric == "status")
      Out += formatStr("%-10s %s: run failed (baseline was clean)\n", Tag,
                       D.Key.c_str());
    else
      Out += formatStr("%-10s %s: %s %.6g -> %.6g (tolerance +%g%%)\n", Tag,
                       D.Key.c_str(), D.Metric.c_str(), D.Baseline,
                       D.Current, D.Tolerance * 100.0);
  }
  for (const std::string &Key : R.MissingInCurrent)
    Out += formatStr("MISSING    %s: present in baseline, absent now\n",
                     Key.c_str());
  for (const std::string &Key : R.NewInCurrent)
    Out += formatStr("new        %s: no baseline entry (not gated)\n",
                     Key.c_str());
  Out += formatStr("bench_diff: %zu metrics compared, %u regressions, "
                   "%u improvements, %zu missing, %zu new\n",
                   R.Deltas.size(), R.Regressions, Improvements,
                   R.MissingInCurrent.size(), R.NewInCurrent.size());
  return Out;
}
