//===- tests/GenTestUtil.h - Shared gen-corpus test helpers -----*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the generated-program test suites
/// (docs/TESTING.md): the seed-sweep width control (`GDP_GEN_SEEDS`) and
/// the failing-seed workflow — every failure prints the one-line
/// `gdptool gen` repro, and with `GDP_GEN_DUMP_DIR` set the offending
/// program's IR text is written there for CI artifact upload.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_TESTS_GENTESTUTIL_H
#define GDP_TESTS_GENTESTUTIL_H

#include "gen/Generator.h"
#include "ir/IRPrinter.h"
#include "ir/Program.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace gdp {
namespace gentest {

/// Number of seeds a sweep should cover: `GDP_GEN_SEEDS` when set (the CI
/// extended job uses 500), else \p Default — chosen per suite so the
/// default ctest run stays fast.
inline unsigned seedCount(unsigned Default) {
  const char *Env = std::getenv("GDP_GEN_SEEDS");
  if (!Env || !*Env)
    return Default;
  long V = std::strtol(Env, nullptr, 10);
  if (V < 1)
    return Default;
  return static_cast<unsigned>(V > 100000 ? 100000 : V);
}

/// Reports one failing generated program: the one-line repro on stderr
/// and, when `GDP_GEN_DUMP_DIR` is set, the full IR text as
/// `<dir>/gen_s<seed>_<ops>.gdp` (uploaded as a CI artifact).
inline void dumpFailingSeed(const gen::GenOptions &Opt, const Program *P,
                            const std::string &Why) {
  std::fprintf(stderr, "gen corpus failure (%s)\n  repro: %s\n",
               Why.c_str(), gen::reproCommand(Opt).c_str());
  const char *Dir = std::getenv("GDP_GEN_DUMP_DIR");
  if (!Dir || !*Dir || !P)
    return;
  std::string Path = std::string(Dir) + "/gen_s" +
                     std::to_string(Opt.Seed) + "_" +
                     std::to_string(Opt.TargetOps) + ".gdp";
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "  (could not write %s)\n", Path.c_str());
    return;
  }
  Out << printProgram(*P, /*IncludeInit=*/true);
  std::fprintf(stderr, "  IR dumped to %s\n", Path.c_str());
}

} // namespace gentest
} // namespace gdp

#endif // GDP_TESTS_GENTESTUTIL_H
