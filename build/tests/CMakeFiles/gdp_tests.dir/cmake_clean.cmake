file(REMOVE_RECURSE
  "CMakeFiles/gdp_tests.dir/AnalysisTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/AnalysisTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/CacheModelTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/CacheModelTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/FuzzTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/FuzzTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/GraphTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/GraphTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/IRTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/IRTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/InterpTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/InterpTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/ParserTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/ParserTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/PartitionTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/PartitionTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/PropertyTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/PropertyTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/SchedTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/SchedTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/SupportTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/SupportTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/TransformTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/TransformTests.cpp.o.d"
  "CMakeFiles/gdp_tests.dir/WorkloadTests.cpp.o"
  "CMakeFiles/gdp_tests.dir/WorkloadTests.cpp.o.d"
  "gdp_tests"
  "gdp_tests.pdb"
  "gdp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
