//===- graph/CSRGraph.cpp - Compressed adjacency for partitioning -----------===//

#include "graph/CSRGraph.h"

#include "graph/PartitionGraph.h"

#include <algorithm>

using namespace gdp;

CSRGraph::CSRGraph(const PartitionGraph &G) {
  NumNodes = G.getNumNodes();
  NumC = G.getNumConstraints();

  NodeW.resize(static_cast<size_t>(NumNodes) * NumC);
  Totals.assign(NumC, 0);
  for (unsigned N = 0; N != NumNodes; ++N) {
    const auto &W = G.getNodeWeights(N);
    for (unsigned C = 0; C != NumC; ++C) {
      NodeW[static_cast<size_t>(N) * NumC + C] = W[C];
      Totals[C] += W[C];
    }
  }

  Off.resize(NumNodes + 1);
  size_t NumSlots = 0;
  for (unsigned N = 0; N != NumNodes; ++N) {
    Off[N] = static_cast<uint32_t>(NumSlots);
    NumSlots += G.neighbors(N).size();
  }
  Off[NumNodes] = static_cast<uint32_t>(NumSlots);

  Nbr.resize(NumSlots);
  EdgeW.resize(NumSlots);
  size_t Slot = 0;
  for (unsigned N = 0; N != NumNodes; ++N)
    for (const auto &[M, W] : G.neighbors(N)) { // ascending neighbor ids
      Nbr[Slot] = M;
      EdgeW[Slot] = W;
      if (M > N)
        TotalEdgeW += W;
      ++Slot;
    }
}

uint64_t CSRGraph::edgeWeightBetween(unsigned A, unsigned B) const {
  const uint32_t *Lo = Nbr.data() + Off[A];
  const uint32_t *Hi = Nbr.data() + Off[A + 1];
  const uint32_t *It = std::lower_bound(Lo, Hi, B);
  if (It == Hi || *It != B)
    return 0;
  return EdgeW[static_cast<size_t>(It - Nbr.data())];
}

uint64_t CSRGraph::cutWeight(const std::vector<unsigned> &Assignment) const {
  uint64_t Cut = 0;
  for (unsigned N = 0; N != NumNodes; ++N)
    for (uint32_t E = Off[N], End = Off[N + 1]; E != End; ++E)
      if (Nbr[E] > N && Assignment[N] != Assignment[Nbr[E]])
        Cut += EdgeW[E];
  return Cut;
}
