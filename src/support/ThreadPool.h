//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with futures-based task submission and the two
/// bulk helpers the evaluation paths use: `parallelFor` over an index range
/// and `parallelMap` over a vector. The design rules (docs/PARALLELISM.md):
///
///  * **Determinism is the caller's problem to keep and this class's
///    problem not to break**: `parallelMap` returns results in input order
///    and both helpers rethrow the exception of the *lowest-indexed*
///    failing task, so observable behaviour never depends on which worker
///    ran what, or when.
///  * **Zero workers means inline**: `ThreadPool(0)` spawns no threads and
///    runs every task on the calling thread at submission time, in
///    submission order — exactly the serial behaviour. Callers map a user
///    request of `--threads=N` to `ThreadPool(N - 1)` because the waiting
///    thread participates in execution (below), so N is the true
///    concurrency.
///  * **No deadlock on nested submission**: a thread that blocks in
///    `wait()`/`parallelFor`/`parallelMap` drains queued tasks itself
///    while it waits ("work helping"). A task may therefore submit and
///    wait on subtasks even when every worker is busy.
///
/// Thread count selection: `threadCountFromEnv()` reads `GDP_THREADS`
/// (clamped to [1, 256]; unset/invalid = 1 = serial). The CLI and bench
/// harness let `--threads=N` override it.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_SUPPORT_THREADPOOL_H
#define GDP_SUPPORT_THREADPOOL_H

#include "support/Budget.h"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gdp {
namespace support {

/// Total thread count requested through the environment: `GDP_THREADS`,
/// clamped to [1, 256]; 1 (fully serial) when unset or unparsable.
unsigned threadCountFromEnv();

/// Fixed worker pool. See the file comment for the guarantees.
class ThreadPool {
public:
  /// Spawns \p Workers background threads. 0 = inline execution.
  explicit ThreadPool(unsigned Workers);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned getNumWorkers() const { return NumWorkers; }

  /// Cooperative-cancellation token shared by this pool's tasks. The pool
  /// never checks it itself (a queued packaged_task must still run so its
  /// future gets a value); cooperative task bodies poll it at loop
  /// boundaries and return early once it trips, so one poisoned or
  /// over-budget task winds the whole batch down without hanging
  /// parallelFor/parallelMap (those still complete and rethrow the
  /// lowest-indexed exception as always).
  CancelToken &cancelToken() { return Cancel; }

  /// Schedules \p Fn and returns the future of its result. With zero
  /// workers the task runs here and now; the returned future is ready.
  template <class Fn> auto submit(Fn &&F) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Fut = Task->get_future();
    enqueue([Task] { (*Task)(); });
    return Fut;
  }

  /// Runs Body(I) for every I in [Begin, End), concurrently, and blocks
  /// until all complete. If tasks threw, rethrows the exception of the
  /// lowest index after everything finished.
  template <class Body>
  void parallelFor(size_t Begin, size_t End, Body &&B) {
    if (Begin >= End)
      return;
    size_t N = End - Begin;
    std::vector<std::future<void>> Futures;
    Futures.reserve(N);
    for (size_t I = Begin; I != End; ++I)
      Futures.push_back(submit([&B, I] { B(I); }));
    rethrowFirst(Futures);
  }

  /// Applies \p Fn to every element of \p Items concurrently; returns the
  /// results in input order. Rethrows the lowest-indexed task's exception
  /// after all tasks completed.
  template <class T, class Fn>
  auto parallelMap(const std::vector<T> &Items, Fn &&F)
      -> std::vector<std::invoke_result_t<Fn, const T &>> {
    using R = std::invoke_result_t<Fn, const T &>;
    std::vector<std::future<R>> Futures;
    Futures.reserve(Items.size());
    for (const T &Item : Items)
      Futures.push_back(submit([&F, &Item] { return F(Item); }));
    std::vector<R> Out;
    Out.reserve(Items.size());
    std::exception_ptr First;
    for (auto &Fut : Futures) {
      waitHelping(Fut);
      try {
        Out.push_back(Fut.get());
      } catch (...) {
        if (!First)
          First = std::current_exception();
        Out.push_back(R{}); // Keep indices aligned for the survivors.
      }
    }
    if (First)
      std::rethrow_exception(First);
    return Out;
  }

private:
  void enqueue(std::function<void()> Task);

  /// Pops and runs one queued task; false when the queue is empty.
  bool runOneTask();

  /// Blocks on \p Fut, executing queued tasks while it is not ready so a
  /// task waiting on subtasks can never deadlock the pool.
  template <class R> void waitHelping(std::future<R> &Fut) {
    while (Fut.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!runOneTask())
        Fut.wait_for(std::chrono::milliseconds(1));
    }
  }

  /// Waits on every future; rethrows the first (lowest-index) exception.
  void rethrowFirst(std::vector<std::future<void>> &Futures) {
    std::exception_ptr First;
    for (auto &Fut : Futures) {
      waitHelping(Fut);
      try {
        Fut.get();
      } catch (...) {
        if (!First)
          First = std::current_exception();
      }
    }
    if (First)
      std::rethrow_exception(First);
  }

  void workerLoop();

  unsigned NumWorkers;
  CancelToken Cancel;
  std::vector<std::thread> Workers;
  std::mutex Mu;
  std::condition_variable QueueCV;
  std::deque<std::function<void()>> Queue;
  bool Stopping = false;
};

} // namespace support
} // namespace gdp

#endif // GDP_SUPPORT_THREADPOOL_H
