//===- ir/DataObject.h - Partitionable data objects -------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A data object: a static global (scalar, array, structure) or a static
/// malloc() call site. These are the units the data partitioner assigns to
/// per-cluster memories. Composite objects are never split across clusters
/// (paper §2).
///
/// Sizes: globals know their byte size from their declared type; heap sites
/// get their size from the profiling run (paper §3.2). The partitioner
/// balances the per-cluster sum of these sizes.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_IR_DATAOBJECT_H
#define GDP_IR_DATAOBJECT_H

#include <cstdint>
#include <string>
#include <vector>

namespace gdp {

/// One partitionable data object.
class DataObject {
public:
  enum class Kind {
    Global,   ///< Static global storage, size known at compile time.
    HeapSite, ///< A static malloc() call site; size comes from profiling.
  };

  DataObject(int Id, Kind K, std::string Name, uint64_t NumElements,
             uint64_t ElemBytes)
      : Id(Id), K(K), Name(std::move(Name)), NumElements(NumElements),
        ElemBytes(ElemBytes), SizeBytes(NumElements * ElemBytes) {}

  int getId() const { return Id; }
  Kind getKind() const { return K; }
  bool isGlobal() const { return K == Kind::Global; }
  bool isHeapSite() const { return K == Kind::HeapSite; }
  const std::string &getName() const { return Name; }

  /// Element count of the storage (globals only; heap allocations size
  /// themselves at runtime through the Malloc operand).
  uint64_t getNumElements() const { return NumElements; }

  /// Logical bytes per element, e.g. 2 for an int16 array. The interpreter
  /// stores every element in one 64-bit slot; ElemBytes only affects the
  /// balance bookkeeping, matching how the paper sizes objects by their
  /// declared C types.
  uint64_t getElemBytes() const { return ElemBytes; }

  /// The size the partitioner balances. For heap sites this is 0 until
  /// setProfiledBytes() is called with the profiling result.
  uint64_t getSizeBytes() const { return SizeBytes; }
  void setProfiledBytes(uint64_t Bytes) { SizeBytes = Bytes; }

  /// Optional initial contents for globals (element values; missing entries
  /// are zero).
  const std::vector<int64_t> &getInit() const { return Init; }
  void setInit(std::vector<int64_t> Values) { Init = std::move(Values); }

private:
  int Id;
  Kind K;
  std::string Name;
  uint64_t NumElements;
  uint64_t ElemBytes;
  uint64_t SizeBytes;
  std::vector<int64_t> Init;
};

} // namespace gdp

#endif // GDP_IR_DATAOBJECT_H
