//===- support/Budget.cpp - Resource budgets and cancellation ---------------===//

#include "support/Budget.h"

#include "support/Telemetry.h"

#include <limits>

using namespace gdp;
using namespace gdp::support;

BudgetMeter::BudgetMeter(const Budget &B)
    : B(B), Start(std::chrono::steady_clock::now()) {}

double BudgetMeter::elapsedMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

double BudgetMeter::remainingMs() const {
  if (Exhausted.load(std::memory_order_relaxed) ||
      (B.Cancel && B.Cancel->cancelled()))
    return 0;
  double R = std::numeric_limits<double>::infinity();
  if (B.WallMsLimit > 0)
    R = B.WallMsLimit - elapsedMs();
  if (B.hasDeadline()) {
    double ToDeadline = std::chrono::duration<double, std::milli>(
                            B.Deadline - std::chrono::steady_clock::now())
                            .count();
    if (ToDeadline < R)
      R = ToDeadline;
  }
  return R < 0 ? 0 : R;
}

bool BudgetMeter::charge(uint64_t N) {
  if (Exhausted.load(std::memory_order_relaxed))
    return false;
  uint64_t Total = Nodes.fetch_add(N, std::memory_order_relaxed) + N;

  int Tripped = 0;
  if (B.NodeLimit && Total >= B.NodeLimit)
    Tripped = 1;
  if (!Tripped && (B.WallMsLimit > 0 || B.hasDeadline())) {
    auto Now = std::chrono::steady_clock::now();
    if (B.WallMsLimit > 0 &&
        std::chrono::duration<double, std::milli>(Now - Start).count() >=
            B.WallMsLimit)
      Tripped = 2;
    else if (B.hasDeadline() && Now >= B.Deadline)
      Tripped = 3;
  }
  if (!Tripped && B.Cancel && B.Cancel->cancelled())
    Tripped = 4;
  if (!Tripped)
    return true;

  int Expected = 0;
  if (TrippedBy.compare_exchange_strong(Expected, Tripped,
                                        std::memory_order_relaxed)) {
    // Exactly one charge() observes the trip first; it owns the counter so
    // --stats shows each exhaustion once, not once per polling worker.
    static const char *const Kind[] = {
        nullptr, "budget.exhausted.node_limit", "budget.exhausted.wall_limit",
        "budget.exhausted.deadline", "budget.exhausted.cancelled"};
    telemetry::counter(Kind[Tripped]);
  }
  Exhausted.store(true, std::memory_order_relaxed);
  if (B.Cancel)
    B.Cancel->cancel(); // Wake sibling workers at their next poll.
  return false;
}

Diag BudgetMeter::diag(const std::string &Site) const {
  int Tripped = TrippedBy.load(std::memory_order_relaxed);
  StatusCode Code =
      Tripped == 4 ? StatusCode::Cancelled : StatusCode::BudgetExhausted;
  const char *What = Tripped == 1   ? "node limit reached"
                     : Tripped == 2 ? "wall-clock limit reached"
                     : Tripped == 3 ? "deadline passed"
                     : Tripped == 4 ? "cancelled"
                                    : "budget exhausted";
  Diag D = warnDiag(Code, Site, What);
  D.with("nodes", consumed());
  if (B.NodeLimit)
    D.with("node_limit", B.NodeLimit);
  if (B.WallMsLimit > 0)
    D.with("wall_ms_limit", B.WallMsLimit);
  return D;
}
