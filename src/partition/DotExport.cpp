//===- partition/DotExport.cpp - GraphViz exports -----------------------------===//

#include "partition/DotExport.h"

#include "ir/IRPrinter.h"
#include "ir/Program.h"
#include "partition/AccessMerge.h"
#include "partition/DataPlacement.h"
#include "partition/ProgramGraph.h"
#include "sched/BlockDFG.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <map>

using namespace gdp;

namespace {

/// A small palette that stays readable in both dot PNG and SVG output.
const char *clusterColor(int Cluster) {
  static const char *Palette[] = {"#a6cee3", "#fdbf6f", "#b2df8a",
                                  "#cab2d6", "#fb9a99", "#ffff99"};
  if (Cluster < 0)
    return "#eeeeee";
  return Palette[static_cast<unsigned>(Cluster) % 6];
}

std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

std::string gdp::exportProgramGraphDot(const Program &P,
                                       const ProgramGraph &PG,
                                       const AccessMerge &Merge,
                                       const DataPlacement *Placement) {
  std::string Out = "digraph program {\n"
                    "  rankdir=TB;\n"
                    "  node [shape=box, style=filled, fontsize=10];\n";

  // Merge groups become dot clusters; singleton compute groups stay flat.
  std::map<unsigned, std::vector<unsigned>> Groups;
  for (unsigned N = 0; N != PG.getNumNodes(); ++N)
    if (PG.getOp(N))
      Groups[Merge.groupOfNode(N)].push_back(N);

  for (const auto &[Group, Nodes] : Groups) {
    const auto &Objs = Merge.objectsOfGroup(Group);
    bool Boxed = Nodes.size() > 1 || !Objs.empty();
    int Home = -1;
    if (Placement && !Objs.empty())
      Home = Placement->getHome(static_cast<unsigned>(Objs[0]));
    if (Boxed) {
      std::vector<std::string> ObjNames;
      for (int Obj : Objs)
        ObjNames.push_back(P.getObject(static_cast<unsigned>(Obj)).getName());
      Out += formatStr("  subgraph cluster_%u {\n    label=\"%s\";\n"
                       "    style=filled;\n    color=\"%s\";\n",
                       Group, escape(join(ObjNames, ", ")).c_str(),
                       clusterColor(Home));
    }
    for (unsigned N : Nodes) {
      const Operation *Op = PG.getOp(N);
      Out += formatStr("    n%u [label=\"%s\", fillcolor=\"%s\"];\n", N,
                       escape(opcodeName(Op->getOpcode())).c_str(),
                       Op->isMemoryAccess() ? "white" : "#f5f5f5");
    }
    if (Boxed)
      Out += "  }\n";
  }

  for (const auto &E : PG.edges())
    Out += formatStr("  n%u -> n%u [penwidth=%.1f];\n", E.A, E.B,
                     1.0 + std::min(4.0, static_cast<double>(E.W) / 1024.0));
  Out += "}\n";
  return Out;
}

std::string gdp::exportRegionDot(const BlockDFG &DFG,
                                 const std::vector<int> &ClusterOfOp) {
  std::string Out = "digraph region {\n"
                    "  node [shape=circle, style=filled, fontsize=10];\n";
  for (unsigned Local = 0; Local != DFG.size(); ++Local) {
    const Operation &Op = DFG.getOp(Local);
    int Cluster = ClusterOfOp[static_cast<unsigned>(Op.getId())];
    Out += formatStr("  n%u [label=\"%s\", fillcolor=\"%s\"%s];\n", Local,
                     escape(opcodeName(Op.getOpcode())).c_str(),
                     clusterColor(Cluster),
                     Op.isMemoryAccess() ? ", shape=doublecircle" : "");
  }
  for (const auto &E : DFG.edges()) {
    const char *Style = E.Kind == BlockDFG::EdgeKind::Data ? "solid"
                        : E.Kind == BlockDFG::EdgeKind::Mem ? "dashed"
                                                            : "dotted";
    Out += formatStr("  n%u -> n%u [style=%s];\n", E.From, E.To, Style);
  }
  Out += "}\n";
  return Out;
}
