//===- sched/SchedulePrinter.cpp - Cycle-by-cycle schedule dumps -------------===//

#include "sched/SchedulePrinter.h"

#include "ir/IRPrinter.h"
#include "machine/MachineModel.h"
#include "sched/BlockDFG.h"
#include "sched/ListScheduler.h"
#include "support/StrUtil.h"

#include <algorithm>

using namespace gdp;

std::string gdp::printBlockSchedule(const BlockDFG &DFG,
                                    const BlockSchedule &BS,
                                    const MachineModel &MM,
                                    const std::vector<int> &ClusterOfOp) {
  unsigned NumClusters = MM.getNumClusters();
  unsigned Cycles = BS.Length;
  // Per-cycle, per-cluster cell contents.
  std::vector<std::vector<std::string>> Cells(
      Cycles, std::vector<std::string>(NumClusters));
  for (unsigned Local = 0; Local != DFG.size(); ++Local) {
    const Operation &Op = DFG.getOp(Local);
    unsigned Cycle = BS.IssueCycle[Local];
    unsigned Cluster = static_cast<unsigned>(
        ClusterOfOp[static_cast<unsigned>(Op.getId())]);
    if (Cycle >= Cycles || Cluster >= NumClusters)
      continue;
    std::string &Cell = Cells[Cycle][Cluster];
    if (!Cell.empty())
      Cell += " | ";
    // Mnemonic + destination keeps rows compact.
    Cell += opcodeName(Op.getOpcode());
    if (Op.hasDest())
      Cell += formatStr(">r%d", Op.getDest());
  }

  std::vector<std::string> Header{"cycle"};
  for (unsigned C = 0; C != NumClusters; ++C)
    Header.push_back(formatStr("cluster %u", C));
  TextTable Table(std::move(Header));
  for (unsigned Cycle = 0; Cycle != Cycles; ++Cycle) {
    bool Empty = true;
    for (const std::string &Cell : Cells[Cycle])
      Empty &= Cell.empty();
    if (Empty)
      continue; // Latency-only cycles are skipped for readability.
    std::vector<std::string> Row{formatStr("%u", Cycle)};
    for (std::string &Cell : Cells[Cycle])
      Row.push_back(Cell.empty() ? "." : Cell);
    Table.addRow(std::move(Row));
  }
  std::string Out = Table.render();
  Out += formatStr("length %u cycles, %u intercluster moves"
                   " (+%u hoisted to preheaders)\n",
                   BS.Length, BS.NumMoves, BS.HoistedMoves);
  return Out;
}
