//===- profile/Interpreter.cpp - Profiling IR interpreter -------------------===//

#include "profile/Interpreter.h"

#include "ir/IRPrinter.h"
#include "profile/ExecTrace.h"
#include "ir/Program.h"
#include "support/StrUtil.h"
#include "support/Telemetry.h"

#include <cassert>
#include <climits>

using namespace gdp;

Interpreter::Interpreter(const Program &P) : Prog(P), Profile(P) {}

int64_t Interpreter::readGlobalInt(unsigned ObjectId, uint64_t Index) const {
  assert(ObjectId < Regions.size() && "global region missing; call run()");
  assert(Index < Regions[ObjectId].Cells.size() && "index out of bounds");
  return Regions[ObjectId].Cells[Index].I;
}

double Interpreter::readGlobalFloat(unsigned ObjectId, uint64_t Index) const {
  assert(ObjectId < Regions.size() && "global region missing; call run()");
  assert(Index < Regions[ObjectId].Cells.size() && "index out of bounds");
  return Regions[ObjectId].Cells[Index].F;
}

unsigned Interpreter::getNumHeapRegions() const {
  return static_cast<unsigned>(Regions.size()) - Prog.getNumObjects();
}

InterpResult Interpreter::run(uint64_t MaxSteps) {
  InterpResult R;
  Profile = ProfileData(Prog);
  Regions.clear();
  if (Trace)
    Trace->reset(Prog);

  // Materialize global storage; region index == object id for globals.
  for (unsigned O = 0; O != Prog.getNumObjects(); ++O) {
    const DataObject &Obj = Prog.getObject(O);
    Region Rg;
    Rg.ObjectId = static_cast<int>(O);
    if (Obj.isGlobal()) {
      Rg.Cells.resize(Obj.getNumElements());
      const auto &Init = Obj.getInit();
      for (size_t I = 0, E = std::min(Init.size(), Rg.Cells.size()); I != E;
           ++I) {
        Rg.Cells[I].I = Init[I];
        Rg.Cells[I].F = static_cast<double>(Init[I]);
      }
    }
    Regions.push_back(std::move(Rg));
  }

  std::vector<Frame> Stack;
  auto PushFrame = [&](const Function &F, int CallerDest) {
    Frame Fr;
    Fr.Func = &F;
    Fr.Regs.resize(F.getNumVRegs());
    Fr.CallerDest = CallerDest;
    Stack.push_back(std::move(Fr));
    Profile.addBlockFreq(static_cast<unsigned>(F.getId()), 0);
    if (Trace)
      Trace->Blocks.push_back({static_cast<uint32_t>(F.getId()), 0});
  };

  if (Prog.getEntryId() < 0) {
    R.Error = "program has no entry function";
    return R;
  }
  PushFrame(Prog.getEntry(), -1);

  std::string Error;
  auto Fail = [&](const Operation &Op, const std::string &Msg) {
    Error = formatStr("runtime error at '%s': %s",
                      printOperation(Op).c_str(), Msg.c_str());
  };

  // Decodes Addr+Extra into a region/offset pair; returns null on error.
  auto Decode = [&](const Operation &Op, int64_t Addr, int64_t Extra,
                    uint64_t &Off) -> Region * {
    int64_t Full = Addr + Extra;
    uint64_t RegIdx = static_cast<uint64_t>(Full) >> 32;
    Off = static_cast<uint64_t>(Full) & 0xffffffffULL;
    if (RegIdx >= Regions.size()) {
      Fail(Op, formatStr("bad address (region %llu of %zu)",
                         static_cast<unsigned long long>(RegIdx),
                         Regions.size()));
      return nullptr;
    }
    Region &Rg = Regions[RegIdx];
    if (Off >= Rg.Cells.size()) {
      Fail(Op, formatStr("out-of-bounds access to %s (index %llu of %zu)",
                         Prog.getObject(static_cast<unsigned>(Rg.ObjectId))
                             .getName()
                             .c_str(),
                         static_cast<unsigned long long>(Off),
                         Rg.Cells.size()));
      return nullptr;
    }
    return &Rg;
  };

  // Hot-loop event counts, flushed to telemetry once after the run.
  uint64_t MemOps = 0, Allocs = 0, Calls = 0;

  while (!Stack.empty() && Error.empty()) {
    // Index-based access: PushFrame may reallocate the stack.
    size_t FrameIdx = Stack.size() - 1;
    const Function &F = *static_cast<const Function *>(Stack[FrameIdx].Func);
    unsigned FId = static_cast<unsigned>(F.getId());
    const BasicBlock &BB =
        F.getBlock(static_cast<unsigned>(Stack[FrameIdx].BlockId));
    assert(Stack[FrameIdx].OpIdx < BB.size() &&
           "fell off the end of a block (verifier should reject this)");
    const Operation &Op = BB.getOp(Stack[FrameIdx].OpIdx);

    if (++R.Steps > MaxSteps) {
      Fail(Op, formatStr("step limit of %llu exceeded",
                         static_cast<unsigned long long>(MaxSteps)));
      break;
    }

    auto &Regs = Stack[FrameIdx].Regs;
    auto RdI = [&](unsigned S) { return Regs[Op.getSrc(S)].I; };
    auto RdF = [&](unsigned S) { return Regs[Op.getSrc(S)].F; };
    auto WrI = [&](int64_t V) {
      Regs[Op.getDest()].I = V;
      Regs[Op.getDest()].F = static_cast<double>(V);
    };
    auto WrF = [&](double V) {
      Regs[Op.getDest()].F = V;
      Regs[Op.getDest()].I = static_cast<int64_t>(V);
    };
    auto Goto = [&](int Target) {
      Stack[FrameIdx].BlockId = Target;
      Stack[FrameIdx].OpIdx = 0;
      Profile.addBlockFreq(FId, static_cast<unsigned>(Target));
      if (Trace)
        Trace->Blocks.push_back({FId, static_cast<uint32_t>(Target)});
    };

    bool Advance = true;
    switch (Op.getOpcode()) {
    case Opcode::Add:
      WrI(RdI(0) + RdI(1));
      break;
    case Opcode::Sub:
      WrI(RdI(0) - RdI(1));
      break;
    case Opcode::Mul:
      WrI(RdI(0) * RdI(1));
      break;
    case Opcode::Div:
      if (RdI(1) == 0 || (RdI(0) == INT64_MIN && RdI(1) == -1)) {
        Fail(Op, "integer division overflow or by zero");
        break;
      }
      WrI(RdI(0) / RdI(1));
      break;
    case Opcode::Rem:
      if (RdI(1) == 0 || (RdI(0) == INT64_MIN && RdI(1) == -1)) {
        Fail(Op, "integer remainder overflow or by zero");
        break;
      }
      WrI(RdI(0) % RdI(1));
      break;
    case Opcode::And:
      WrI(RdI(0) & RdI(1));
      break;
    case Opcode::Or:
      WrI(RdI(0) | RdI(1));
      break;
    case Opcode::Xor:
      WrI(RdI(0) ^ RdI(1));
      break;
    case Opcode::Shl:
      WrI(static_cast<int64_t>(static_cast<uint64_t>(RdI(0))
                               << (RdI(1) & 63)));
      break;
    case Opcode::AShr:
      WrI(RdI(0) >> (RdI(1) & 63));
      break;
    case Opcode::LShr:
      WrI(static_cast<int64_t>(static_cast<uint64_t>(RdI(0)) >>
                               (RdI(1) & 63)));
      break;
    case Opcode::CmpEQ:
      WrI(RdI(0) == RdI(1));
      break;
    case Opcode::CmpNE:
      WrI(RdI(0) != RdI(1));
      break;
    case Opcode::CmpLT:
      WrI(RdI(0) < RdI(1));
      break;
    case Opcode::CmpLE:
      WrI(RdI(0) <= RdI(1));
      break;
    case Opcode::CmpGT:
      WrI(RdI(0) > RdI(1));
      break;
    case Opcode::CmpGE:
      WrI(RdI(0) >= RdI(1));
      break;
    case Opcode::Min:
      WrI(std::min(RdI(0), RdI(1)));
      break;
    case Opcode::Max:
      WrI(std::max(RdI(0), RdI(1)));
      break;
    case Opcode::Abs:
      WrI(RdI(0) < 0 ? -RdI(0) : RdI(0));
      break;
    case Opcode::Select:
      Regs[Op.getDest()] = RdI(0) != 0 ? Regs[Op.getSrc(1)]
                                       : Regs[Op.getSrc(2)];
      break;
    case Opcode::FAdd:
      WrF(RdF(0) + RdF(1));
      break;
    case Opcode::FSub:
      WrF(RdF(0) - RdF(1));
      break;
    case Opcode::FMul:
      WrF(RdF(0) * RdF(1));
      break;
    case Opcode::FDiv:
      WrF(RdF(0) / RdF(1)); // IEEE semantics; inf/nan allowed.
      break;
    case Opcode::FNeg:
      WrF(-RdF(0));
      break;
    case Opcode::FAbs:
      WrF(RdF(0) < 0 ? -RdF(0) : RdF(0));
      break;
    case Opcode::FMin:
      WrF(std::min(RdF(0), RdF(1)));
      break;
    case Opcode::FMax:
      WrF(std::max(RdF(0), RdF(1)));
      break;
    case Opcode::FCmpEQ:
      WrI(RdF(0) == RdF(1));
      break;
    case Opcode::FCmpLT:
      WrI(RdF(0) < RdF(1));
      break;
    case Opcode::FCmpLE:
      WrI(RdF(0) <= RdF(1));
      break;
    case Opcode::ItoF:
      WrF(static_cast<double>(RdI(0)));
      break;
    case Opcode::FtoI:
      WrI(static_cast<int64_t>(RdF(0)));
      break;
    case Opcode::MovI:
      WrI(Op.getImm());
      break;
    case Opcode::MovF:
      WrF(Op.getFImm());
      break;
    case Opcode::Mov:
    case Opcode::ICMove:
      Regs[Op.getDest()] = Regs[Op.getSrc(0)];
      break;
    case Opcode::AddrOf:
      WrI(makeAddr(static_cast<uint64_t>(Op.getImm()), 0));
      break;
    case Opcode::Load: {
      uint64_t Off;
      Region *Rg = Decode(Op, RdI(0), Op.getImm(), Off);
      if (!Rg)
        break;
      Regs[Op.getDest()] = Rg->Cells[Off];
      Profile.addAccess(FId, static_cast<unsigned>(Op.getId()), Rg->ObjectId);
      if (Trace)
        Trace->AccessObj[FId][static_cast<unsigned>(Op.getId())].push_back(
            static_cast<int32_t>(Rg->ObjectId));
      ++MemOps;
      break;
    }
    case Opcode::Store: {
      uint64_t Off;
      Region *Rg = Decode(Op, RdI(1), Op.getImm(), Off);
      if (!Rg)
        break;
      Rg->Cells[Off] = Regs[Op.getSrc(0)];
      Profile.addAccess(FId, static_cast<unsigned>(Op.getId()), Rg->ObjectId);
      if (Trace)
        Trace->AccessObj[FId][static_cast<unsigned>(Op.getId())].push_back(
            static_cast<int32_t>(Rg->ObjectId));
      ++MemOps;
      break;
    }
    case Opcode::Malloc: {
      int64_t Size = RdI(0);
      if (Size < 0 || Size > (1 << 28)) {
        Fail(Op, formatStr("bad allocation size %lld",
                           static_cast<long long>(Size)));
        break;
      }
      int Site = Op.getMallocSite();
      Region Rg;
      Rg.ObjectId = Site;
      Rg.Cells.resize(static_cast<size_t>(Size));
      uint64_t RegIdx = Regions.size();
      Regions.push_back(std::move(Rg));
      WrI(makeAddr(RegIdx, 0));
      const DataObject &SiteObj =
          Prog.getObject(static_cast<unsigned>(Site));
      Profile.addHeapBytes(Site,
                           static_cast<uint64_t>(Size) *
                               SiteObj.getElemBytes());
      Profile.addHeapAlloc(Site);
      ++Allocs;
      break;
    }
    case Opcode::Br:
      Goto(Op.getTarget(0));
      Advance = false;
      break;
    case Opcode::BrCond:
      Goto(RdI(0) != 0 ? Op.getTarget(0) : Op.getTarget(1));
      Advance = false;
      break;
    case Opcode::Call: {
      const Function &Callee =
          Prog.getFunction(static_cast<unsigned>(Op.getCallee()));
      // Resume after the call when the callee returns.
      ++Stack[FrameIdx].OpIdx;
      Advance = false;
      std::vector<RtValue> Args(Op.getNumSrcs());
      for (unsigned A = 0; A != Op.getNumSrcs(); ++A)
        Args[A] = Regs[Op.getSrc(A)];
      PushFrame(Callee, Op.getDest());
      for (unsigned A = 0; A != Args.size(); ++A)
        Stack.back().Regs[A] = Args[A];
      ++Calls;
      break;
    }
    case Opcode::Ret: {
      RtValue RetV;
      bool HasV = Op.getNumSrcs() > 0;
      if (HasV)
        RetV = Regs[Op.getSrc(0)];
      int Dest = Stack[FrameIdx].CallerDest;
      Stack.pop_back();
      Advance = false;
      if (Stack.empty()) {
        R.HasReturn = HasV;
        R.ReturnValue = RetV;
      } else if (Dest >= 0) {
        if (!HasV) {
          Fail(Op, "void return bound to a call result");
          break;
        }
        Stack.back().Regs[Dest] = RetV;
      }
      break;
    }
    }

    if (Advance && Error.empty())
      ++Stack[FrameIdx].OpIdx;
  }

  R.Ok = Error.empty();
  R.Error = Error;

  if (telemetry::enabled()) {
    telemetry::counter("interp.runs");
    telemetry::counter("interp.steps", R.Steps);
    telemetry::counter("interp.mem_ops", MemOps);
    telemetry::counter("interp.heap_allocs", Allocs);
    telemetry::counter("interp.calls", Calls);
  }
  return R;
}
