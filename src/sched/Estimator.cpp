//===- sched/Estimator.cpp - Schedule-length estimation ---------------------===//

#include "sched/Estimator.h"

#include "ir/Operation.h"
#include "machine/MachineModel.h"

#include <algorithm>
#include <cassert>

using namespace gdp;

ScheduleEstimator::ScheduleEstimator(const BlockDFG &DFG,
                                     const MachineModel &MM,
                                     support::Arena *A)
    : Latency(A), OpIds(A), Kind(A), FUCount(A), DataEdges(A), LiveUses(A),
      SuccOff(A), SuccTo(A), SuccBase(A), SuccIsData(A), KindCountScratch(A),
      StartScratch(A), MoveScratch(A) {
  N = DFG.size();
  NumClusters = MM.getNumClusters();
  MoveLat = MM.getMoveLatency();
  BW = std::max(1u, MM.getMoveBandwidth());

  Latency.resize(N);
  OpIds.resize(N);
  Kind.resize(N);
  for (unsigned I = 0; I != N; ++I) {
    const Operation &Op = DFG.getOp(I);
    Latency[I] = MM.getLatency(Op.getOpcode());
    OpIds[I] = static_cast<unsigned>(Op.getId());
    Kind[I] = static_cast<uint8_t>(Op.getFUKind());
  }

  FUCount.resize(NumClusters * 4);
  for (unsigned C = 0; C != NumClusters; ++C)
    for (unsigned K = 0; K != 4; ++K)
      FUCount[C * 4 + K] = MM.getFUCount(C, static_cast<FUKind>(K));

  for (const auto &Edge : DFG.edges())
    if (Edge.Kind == BlockDFG::EdgeKind::Data)
      DataEdges.push_back({Edge.From, Edge.To});

  for (const auto &LI : DFG.liveIns()) {
    if (LI.DefOpId < 0 || LI.Hoistable)
      continue; // Hoisted transfers are paid per loop entry, not here.
    LiveUses.push_back({LI.LocalUser, LI.DefOpId});
  }

  // Flatten the successor lists with their base (same-cluster) delays.
  SuccOff.resize(N + 1, 0);
  SuccTo.reserve(DFG.edges().size());
  SuccBase.reserve(DFG.edges().size());
  SuccIsData.reserve(DFG.edges().size());
  for (unsigned I = 0; I != N; ++I) {
    SuccOff[I] = static_cast<uint32_t>(SuccTo.size());
    for (unsigned E : DFG.succs(I)) {
      const BlockDFG::Edge &Edge = DFG.edges()[E];
      unsigned Base = 0;
      switch (Edge.Kind) {
      case BlockDFG::EdgeKind::Data:
        Base = Latency[I];
        break;
      case BlockDFG::EdgeKind::Mem:
        Base = 1;
        break;
      case BlockDFG::EdgeKind::Order:
        Base = 0;
        break;
      }
      SuccTo.push_back(Edge.To);
      SuccBase.push_back(Base);
      SuccIsData.push_back(Edge.Kind == BlockDFG::EdgeKind::Data);
    }
  }
  SuccOff[N] = static_cast<uint32_t>(SuccTo.size());

  MoveScratch.reserve(DataEdges.size() + LiveUses.size());
  StartScratch.reserve(N);
  KindCountScratch.reserve(NumClusters * 4);
}

unsigned
ScheduleEstimator::computeMoves(const std::vector<int> &ClusterOfOp) const {
  // Distinct (producer key, dest cluster) pairs; negative keys distinguish
  // external producers from local ones. Collect-sort-unique matches the
  // set semantics without per-call node allocation.
  auto &Transfers = MoveScratch;
  Transfers.clear();
  for (const DataEdge &E : DataEdges) {
    int CF = ClusterOfOp[OpIds[E.From]], CT = ClusterOfOp[OpIds[E.To]];
    if (CF != CT)
      Transfers.push_back({static_cast<int>(E.From), CT});
  }
  for (const LiveUse &L : LiveUses) {
    int DefCluster = ClusterOfOp[static_cast<unsigned>(L.DefId)];
    int UserCluster = ClusterOfOp[OpIds[L.User]];
    if (DefCluster != UserCluster)
      Transfers.push_back({-(L.DefId + 2), UserCluster});
  }
  std::sort(Transfers.begin(), Transfers.end());
  Transfers.erase(std::unique(Transfers.begin(), Transfers.end()),
                  Transfers.end());
  return static_cast<unsigned>(Transfers.size());
}

unsigned
ScheduleEstimator::countMoves(const std::vector<int> &ClusterOfOp) const {
  return computeMoves(ClusterOfOp);
}

unsigned
ScheduleEstimator::estimateWithMoves(const std::vector<int> &ClusterOfOp,
                                     unsigned &MovesOut) const {
  if (N == 0) {
    MovesOut = 0;
    return 0;
  }
  auto ClusterOf = [&](unsigned Local) {
    int C = ClusterOfOp[OpIds[Local]];
    assert(C >= 0 && "estimator needs a complete assignment");
    return static_cast<unsigned>(C);
  };

  // --- Resource bound.
  auto &KindCount = KindCountScratch;
  KindCount.assign(NumClusters * 4, 0);
  for (unsigned I = 0; I != N; ++I)
    ++KindCount[ClusterOf(I) * 4 + Kind[I]];
  unsigned ResourceBound = 0;
  for (unsigned S = 0; S != NumClusters * 4; ++S) {
    if (KindCount[S] == 0)
      continue;
    unsigned Units = FUCount[S];
    assert(Units > 0 && "operations assigned to cluster without units");
    ResourceBound = std::max(ResourceBound, (KindCount[S] + Units - 1) / Units);
  }

  // --- Interconnect bound.
  unsigned Moves = computeMoves(ClusterOfOp);
  MovesOut = Moves;
  unsigned BusBound = (Moves + BW - 1) / BW;

  // --- Critical path. Program order is a topological order (all region
  // edges point forward).
  auto &Start = StartScratch;
  Start.assign(N, 0);
  for (const LiveUse &L : LiveUses)
    if (static_cast<unsigned>(ClusterOfOp[static_cast<unsigned>(L.DefId)]) !=
        ClusterOf(L.User))
      Start[L.User] = std::max(Start[L.User], MoveLat);
  unsigned CP = 0;
  for (unsigned I = 0; I != N; ++I) {
    unsigned CI = ClusterOf(I);
    unsigned SI = Start[I];
    for (uint32_t E = SuccOff[I], End = SuccOff[I + 1]; E != End; ++E) {
      unsigned Delay = SuccBase[E];
      if (SuccIsData[E] && ClusterOf(SuccTo[E]) != CI)
        Delay += MoveLat;
      unsigned To = SuccTo[E];
      Start[To] = std::max(Start[To], SI + Delay);
    }
    CP = std::max(CP, SI + std::max(1u, Latency[I]));
  }

  return std::max({ResourceBound, BusBound, CP});
}

unsigned
ScheduleEstimator::estimate(const std::vector<int> &ClusterOfOp) const {
  unsigned Moves;
  return estimateWithMoves(ClusterOfOp, Moves);
}
