//===- workloads/Video.cpp - DCT-based image/video coders --------------------===//
//
// `mpeg2enc`: per-8×8-block separable forward DCT, intra quantization and
// zigzag scan — the core loop nest of an MPEG-2 intra encoder.
//
// `mpeg2dec`: the inverse pipeline — dezigzag, dequantization, separable
// inverse DCT, saturation into the reconstructed frame.
//
// `cjpeg`: RGB→YCbCr color conversion followed by the same DCT/quantize
// machinery on the luma plane with JPEG's luminance table.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "ir/IRBuilder.h"
#include "support/Random.h"
#include "workloads/Inputs.h"

#include <cmath>

using namespace gdp;

namespace {

constexpr unsigned FrameW = 64;
constexpr unsigned FrameH = 64;
constexpr unsigned NumBlocks = (FrameW / 8) * (FrameH / 8);

/// Scaled DCT-II basis: C[u*8+x] = round(cos((2x+1)uπ/16) · 2048),
/// with the 1/√2 normalization folded into row u = 0.
std::vector<int64_t> makeCosTable() {
  std::vector<int64_t> T(64);
  for (unsigned U = 0; U != 8; ++U)
    for (unsigned X = 0; X != 8; ++X) {
      double V = std::cos((2 * X + 1) * U * 3.14159265358979323846 / 16.0);
      if (U == 0)
        V *= 0.70710678118654752440;
      T[U * 8 + X] = static_cast<int64_t>(std::lround(V * 2048.0));
    }
  return T;
}

/// The MPEG-2 default intra quantizer matrix.
const int64_t IntraQuant[64] = {
    8,  16, 19, 22, 26, 27, 29, 34, 16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38, 22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48, 26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69, 27, 29, 35, 38, 46, 56, 69, 83};

/// JPEG Annex K luminance table.
const int64_t JpegLum[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

/// Standard zigzag scan order.
const int64_t Zigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

std::vector<int64_t> tableVec64(const int64_t *Data) {
  return std::vector<int64_t>(Data, Data + 64);
}

/// Emits a fully unrolled 8-element dot product with a tree reduction —
/// the region shape an unrolling VLIW compiler produces from the DCT
/// inner loops (8 parallel load pairs, log-depth adds).
template <typename LoadA, typename LoadB>
int emitDot8(IRBuilder &B, LoadA A, LoadB Bv) {
  std::vector<int> Products;
  Products.reserve(8);
  for (unsigned I = 0; I != 8; ++I)
    Products.push_back(B.mul(A(I), Bv(I)));
  for (unsigned Stride = 1; Stride < 8; Stride *= 2)
    for (unsigned I = 0; I + Stride < 8; I += 2 * Stride)
      Products[I] = B.add(Products[I], Products[I + Stride]);
  return Products[0];
}

/// Emits the separable 8×8 transform: reads block (bx, by) from
/// \p SrcBase (frame of width FrameW), writes 64 coefficients into
/// \p TmpBase/DstBase scratch order. Used forward (RowsThenCols with the
/// cos table) by the encoders.
void emitForwardDct(IRBuilder &B, int SrcBase, int TmpBase, int DstBase,
                    int CosBase, int Bx, int By) {
  int RowOrigin = B.add(B.mul(B.mul(By, B.movi(8)), B.movi(FrameW)),
                        B.mul(Bx, B.movi(8)));
  // Pass 1 (rows): tmp[u*8+y] = Σx src(x, y) · C[u*8+x]  >> 11.
  // The y dimension is fully unrolled: each u-iteration is one wide,
  // memory-parallel region of 8 independent dot products (the superblock
  // shape the paper's Trimaran regions have after unrolling).
  auto LU = B.beginCountedLoop(0, 8);
  int CosRow = B.add(CosBase, B.mul(LU.IndVar, B.movi(8)));
  for (int64_t Y = 0; Y != 8; ++Y) {
    int RowAddr = B.add(B.add(SrcBase, RowOrigin), B.movi(Y * FrameW));
    int Sum = emitDot8(
        B, [&](unsigned X) { return B.load(RowAddr, X); },
        [&](unsigned X) { return B.load(CosRow, X); });
    B.store(B.ashr(Sum, B.movi(11)),
            B.add(B.add(TmpBase, B.mul(LU.IndVar, B.movi(8))), B.movi(Y)));
  }
  B.endCountedLoop(LU);

  // Pass 2 (cols): dst[v*8+u] = Σy tmp[u*8+y] · C[v*8+y]  >> 13.
  auto LV = B.beginCountedLoop(0, 8);
  int CosRow2 = B.add(CosBase, B.mul(LV.IndVar, B.movi(8)));
  for (int64_t U = 0; U != 8; ++U) {
    int TmpRow = B.add(TmpBase, B.movi(U * 8));
    int Sum2 = emitDot8(
        B, [&](unsigned Y) { return B.load(TmpRow, Y); },
        [&](unsigned Y) { return B.load(CosRow2, Y); });
    B.store(B.ashr(Sum2, B.movi(13)),
            B.add(B.add(DstBase, B.mul(LV.IndVar, B.movi(8))), B.movi(U)));
  }
  B.endCountedLoop(LV);
}

} // namespace

std::unique_ptr<Program> gdp::buildMpeg2Enc() {
  auto P = std::make_unique<Program>("mpeg2enc");
  int Frame = P->addGlobal("frameIn", FrameW * FrameH, 1);
  P->getObject(Frame).setInit(makeImageInput(FrameW, FrameH, 71));
  // Reference frame for motion estimation: the same scene, slightly
  // shifted and re-noised.
  int RefFrame = P->addGlobal("refFrame", FrameW * FrameH, 1);
  {
    auto Cur = makeImageInput(FrameW, FrameH, 71);
    Random RNG(75);
    std::vector<int64_t> Ref(FrameW * FrameH);
    for (unsigned Y = 0; Y != FrameH; ++Y)
      for (unsigned X = 0; X != FrameW; ++X) {
        unsigned SrcX = X > 0 ? X - 1 : X;
        int64_t V = Cur[Y * FrameW + SrcX] + RNG.nextInRange(-4, 4);
        Ref[Y * FrameW + X] = std::min<int64_t>(255, std::max<int64_t>(0, V));
      }
    P->getObject(RefFrame).setInit(std::move(Ref));
  }
  int CosTab = P->addGlobal("dctCos", 64, 2);
  P->getObject(CosTab).setInit(makeCosTable());
  int QMat = P->addGlobal("intraQuant", 64, 1);
  P->getObject(QMat).setInit(tableVec64(IntraQuant));
  int Zz = P->addGlobal("zigzag", 64, 1);
  P->getObject(Zz).setInit(tableVec64(Zigzag));
  int Tmp = P->addGlobal("dctTmp", 64, 4);
  int Coef = P->addGlobal("dctCoef", 64, 4);
  int Out = P->addGlobal("coefOut", NumBlocks * 64, 2);
  int Motion = P->addGlobal("motionOut", NumBlocks * 2, 1);

  Function *Main = P->makeFunction("main", 0);
  Function *DoBlock = P->makeFunction("encode_block", 2); // (bx, by)
  Function *MotionEst = P->makeFunction("motion_estimate", 2); // (bx, by)

  // --- motion_estimate(bx, by): full search in a ±2 window, SAD metric.
  // The hot loop reads the current and the reference frame in parallel —
  // the two-buffer access pattern that dominates real MPEG-2 encoding and
  // that data partitioning serves well (one frame per cluster memory).
  {
    IRBuilder B(MotionEst);
    B.setInsertPoint(MotionEst->makeBlock("entry"));
    int Bx = 0, By = 1;
    int CurBase = B.addrOf(Frame);
    int RefBase = B.addrOf(RefFrame);
    int MotionBase = B.addrOf(Motion);
    int RowOrigin = B.add(B.mul(B.mul(By, B.movi(8)), B.movi(FrameW)),
                          B.mul(Bx, B.movi(8)));

    int BestSad = B.movi(1 << 24);
    int BestDx = B.movi(0);
    int BestDy = B.movi(0);
    // Clamp the candidate window against the frame edges.
    int Zero = B.movi(0);
    auto LDy = B.beginCountedLoop(-2, 3);
    auto LDx = B.beginCountedLoop(-2, 3);
    int Sad = B.movi(0);
    auto LRow = B.beginCountedLoop(0, 8);
    int CurRow = B.add(B.add(CurBase, RowOrigin),
                       B.mul(LRow.IndVar, B.movi(FrameW)));
    // Clamped reference row start.
    int RefY = B.add(B.add(B.mul(By, B.movi(8)), LRow.IndVar), LDy.IndVar);
    RefY = B.max(RefY, Zero);
    RefY = B.min(RefY, B.movi(FrameH - 1));
    int RefX = B.add(B.mul(Bx, B.movi(8)), LDx.IndVar);
    RefX = B.max(RefX, Zero);
    RefX = B.min(RefX, B.movi(FrameW - 9));
    int RefRow = B.add(B.add(RefBase, B.mul(RefY, B.movi(FrameW))), RefX);
    // Unrolled 8-pixel SAD row: 16 parallel loads, tree reduction.
    std::vector<int> Diffs;
    for (unsigned X = 0; X != 8; ++X) {
      int C = B.load(CurRow, X);
      int R = B.load(RefRow, X);
      Diffs.push_back(B.abs(B.sub(C, R)));
    }
    for (unsigned Stride = 1; Stride < 8; Stride *= 2)
      for (unsigned I = 0; I + Stride < 8; I += 2 * Stride)
        Diffs[I] = B.add(Diffs[I], Diffs[I + Stride]);
    B.emitBinaryTo(Sad, Opcode::Add, Sad, Diffs[0]);
    B.endCountedLoop(LRow);

    int Better = B.cmpLT(Sad, BestSad);
    B.movTo(BestSad, B.select(Better, Sad, BestSad));
    B.movTo(BestDx, B.select(Better, LDx.IndVar, BestDx));
    B.movTo(BestDy, B.select(Better, LDy.IndVar, BestDy));
    B.endCountedLoop(LDx);
    B.endCountedLoop(LDy);

    int BlockIdx = B.add(B.mul(By, B.movi(FrameW / 8)), Bx);
    int MvAddr = B.add(MotionBase, B.shl(BlockIdx, B.movi(1)));
    B.store(BestDx, MvAddr, 0);
    B.store(BestDy, MvAddr, 1);
    B.ret();
  }

  {
    IRBuilder B(DoBlock);
    B.setInsertPoint(DoBlock->makeBlock("entry"));
    int Bx = 0, By = 1;
    int FrameBase = B.addrOf(Frame);
    int CosBase = B.addrOf(CosTab);
    int TmpBase = B.addrOf(Tmp);
    int CoefBase = B.addrOf(Coef);
    emitForwardDct(B, FrameBase, TmpBase, CoefBase, CosBase, Bx, By);

    // Quantize + zigzag into the output stream.
    int QBase = B.addrOf(QMat);
    int ZBase = B.addrOf(Zz);
    int OutBase = B.addrOf(Out);
    int BlockIdx = B.add(B.mul(By, B.movi(FrameW / 8)), Bx);
    int OutOrigin = B.add(OutBase, B.mul(BlockIdx, B.movi(64)));
    auto LQ = B.beginCountedLoop(0, 64);
    int Pos = B.load(B.add(ZBase, LQ.IndVar));
    int C = B.load(B.add(CoefBase, Pos));
    int Q = B.load(B.add(QBase, Pos));
    int Sign = B.cmpLT(C, B.movi(0));
    int Mag = B.div(B.shl(B.abs(C), B.movi(1)), B.max(Q, B.movi(1)));
    int Level = B.select(Sign, B.sub(B.movi(0), Mag), Mag);
    B.store(Level, B.add(OutOrigin, LQ.IndVar));
    B.endCountedLoop(LQ);
    B.ret();
  }

  {
    IRBuilder B(Main);
    B.setInsertPoint(Main->makeBlock("entry"));
    auto LBy = B.beginCountedLoop(0, FrameH / 8);
    auto LBx = B.beginCountedLoop(0, FrameW / 8);
    B.call(MotionEst, {LBx.IndVar, LBy.IndVar}, /*WantResult=*/false);
    B.call(DoBlock, {LBx.IndVar, LBy.IndVar}, /*WantResult=*/false);
    B.endCountedLoop(LBx);
    B.endCountedLoop(LBy);

    int OutBase = B.addrOf(Out);
    int NonZero = B.movi(0);
    auto L = B.beginCountedLoop(0, static_cast<int64_t>(NumBlocks * 64));
    int V = B.load(B.add(OutBase, L.IndVar));
    B.emitBinaryTo(NonZero, Opcode::Add, NonZero, B.cmpNE(V, B.movi(0)));
    B.endCountedLoop(L);
    // Fold the motion vectors into the checksum so motion estimation is
    // observable.
    int MvBase = B.addrOf(Motion);
    auto LM = B.beginCountedLoop(0, static_cast<int64_t>(NumBlocks * 2));
    int Mv = B.load(B.add(MvBase, LM.IndVar));
    B.emitBinaryTo(NonZero, Opcode::Add, NonZero, B.abs(Mv));
    B.endCountedLoop(LM);
    B.ret(NonZero);
  }
  return P;
}

std::unique_ptr<Program> gdp::buildMpeg2Dec() {
  auto P = std::make_unique<Program>("mpeg2dec");

  // Synthetic coefficient stream: sparse small levels, DC-heavy.
  std::vector<int64_t> CoefStream(NumBlocks * 64, 0);
  {
    Random RNG(72);
    for (unsigned Blk = 0; Blk != NumBlocks; ++Blk) {
      CoefStream[Blk * 64] = RNG.nextInRange(60, 180); // DC.
      for (unsigned I = 1; I != 12; ++I)
        CoefStream[Blk * 64 + I] = RNG.nextInRange(-24, 24);
    }
  }
  int CoefIn = P->addGlobal("coefIn", NumBlocks * 64, 2);
  P->getObject(CoefIn).setInit(std::move(CoefStream));
  int CosTab = P->addGlobal("dctCos", 64, 2);
  P->getObject(CosTab).setInit(makeCosTable());
  int QMat = P->addGlobal("intraQuant", 64, 1);
  P->getObject(QMat).setInit(tableVec64(IntraQuant));
  int Zz = P->addGlobal("zigzag", 64, 1);
  P->getObject(Zz).setInit(tableVec64(Zigzag));
  int Block = P->addGlobal("coefBlock", 64, 4);
  int Tmp = P->addGlobal("idctTmp", 64, 4);
  int Recon = P->addGlobal("reconFrame", FrameW * FrameH, 1);

  Function *Main = P->makeFunction("main", 0);
  Function *DoBlock = P->makeFunction("decode_block", 2); // (bx, by)

  {
    IRBuilder B(DoBlock);
    B.setInsertPoint(DoBlock->makeBlock("entry"));
    int Bx = 0, By = 1;
    int InBase = B.addrOf(CoefIn);
    int ZBase = B.addrOf(Zz);
    int QBase = B.addrOf(QMat);
    int BlkBase = B.addrOf(Block);
    int TmpBase = B.addrOf(Tmp);
    int CosBase = B.addrOf(CosTab);
    int ReconBase = B.addrOf(Recon);

    // Dezigzag + dequantize into the natural-order block.
    int BlockIdx = B.add(B.mul(By, B.movi(FrameW / 8)), Bx);
    int InOrigin = B.add(InBase, B.mul(BlockIdx, B.movi(64)));
    auto LD = B.beginCountedLoop(0, 64);
    int Level = B.load(B.add(InOrigin, LD.IndVar));
    int Pos = B.load(B.add(ZBase, LD.IndVar));
    int Q = B.load(B.add(QBase, Pos));
    int Val = B.ashr(B.mul(Level, Q), B.movi(1));
    B.store(Val, B.add(BlkBase, Pos));
    B.endCountedLoop(LD);

    // Inverse separable transform (v fully unrolled per x — see
    // emitForwardDct on region shape):
    // tmp[x*8+v] = Σu blk[v*8+u] · C[u*8+x]  >> 11
    auto LX = B.beginCountedLoop(0, 8);
    int CosCol = B.add(CosBase, LX.IndVar);
    for (int64_t V = 0; V != 8; ++V) {
      int BlkRow = B.add(BlkBase, B.movi(V * 8));
      int Sum = emitDot8(
          B, [&](unsigned U) { return B.load(BlkRow, U); },
          [&](unsigned U) { return B.load(CosCol, 8 * U); });
      B.store(B.ashr(Sum, B.movi(11)),
              B.add(B.add(TmpBase, B.mul(LX.IndVar, B.movi(8))), B.movi(V)));
    }
    B.endCountedLoop(LX);

    // pix(x, y) = clamp(Σv tmp[x*8+v] · C[v*8+y] >> 13, 0, 255).
    int RowOrigin = B.add(B.mul(B.mul(By, B.movi(8)), B.movi(FrameW)),
                          B.mul(Bx, B.movi(8)));
    auto LX2 = B.beginCountedLoop(0, 8);
    int TmpRow = B.add(TmpBase, B.mul(LX2.IndVar, B.movi(8)));
    for (int64_t Y = 0; Y != 8; ++Y) {
      int CosCol2 = B.add(CosBase, B.movi(Y));
      int Sum2 = emitDot8(
          B, [&](unsigned V) { return B.load(TmpRow, V); },
          [&](unsigned V) { return B.load(CosCol2, 8 * V); });
      int Pix = B.ashr(Sum2, B.movi(13));
      Pix = B.max(Pix, B.movi(0));
      Pix = B.min(Pix, B.movi(255));
      B.store(Pix, B.add(B.add(ReconBase, RowOrigin),
                         B.add(B.movi(Y * FrameW), LX2.IndVar)));
    }
    B.endCountedLoop(LX2);
    B.ret();
  }

  {
    IRBuilder B(Main);
    B.setInsertPoint(Main->makeBlock("entry"));
    auto LBy = B.beginCountedLoop(0, FrameH / 8);
    auto LBx = B.beginCountedLoop(0, FrameW / 8);
    B.call(DoBlock, {LBx.IndVar, LBy.IndVar}, /*WantResult=*/false);
    B.endCountedLoop(LBx);
    B.endCountedLoop(LBy);

    int ReconBase = B.addrOf(Recon);
    int Sum = B.movi(0);
    auto L = B.beginCountedLoop(0, static_cast<int64_t>(FrameW * FrameH));
    int V = B.load(B.add(ReconBase, L.IndVar));
    B.emitBinaryTo(Sum, Opcode::Add, Sum, V);
    B.endCountedLoop(L);
    B.ret(Sum);
  }
  return P;
}

std::unique_ptr<Program> gdp::buildCjpeg() {
  auto P = std::make_unique<Program>("cjpeg");
  unsigned N = FrameW * FrameH;

  // Interleaved RGB input (three correlated planes).
  std::vector<int64_t> Rgb(3 * N);
  {
    auto Y = makeImageInput(FrameW, FrameH, 73);
    Random RNG(74);
    for (unsigned I = 0; I != N; ++I) {
      Rgb[3 * I + 0] = std::min<int64_t>(255, Y[I] + RNG.nextInRange(0, 30));
      Rgb[3 * I + 1] = Y[I];
      Rgb[3 * I + 2] = std::max<int64_t>(0, Y[I] - RNG.nextInRange(0, 30));
    }
  }
  int RgbIn = P->addGlobal("rgbIn", 3 * N, 1);
  P->getObject(RgbIn).setInit(std::move(Rgb));
  int YPlane = P->addGlobal("yPlane", N, 1);
  int CbPlane = P->addGlobal("cbPlane", N, 1);
  int CrPlane = P->addGlobal("crPlane", N, 1);
  int CosTab = P->addGlobal("dctCos", 64, 2);
  P->getObject(CosTab).setInit(makeCosTable());
  int QLum = P->addGlobal("lumQuant", 64, 1);
  P->getObject(QLum).setInit(tableVec64(JpegLum));
  int Tmp = P->addGlobal("dctTmp", 64, 4);
  int Coef = P->addGlobal("dctCoef", 64, 4);
  int Out = P->addGlobal("coefOut", NumBlocks * 64, 2);

  Function *Main = P->makeFunction("main", 0);
  Function *Convert = P->makeFunction("color_convert", 0);
  Function *DoBlock = P->makeFunction("compress_block", 2); // (bx, by)

  // --- color_convert: integer BT.601.
  {
    IRBuilder B(Convert);
    B.setInsertPoint(Convert->makeBlock("entry"));
    int RgbBase = B.addrOf(RgbIn);
    int YBase = B.addrOf(YPlane);
    int CbBase = B.addrOf(CbPlane);
    int CrBase = B.addrOf(CrPlane);
    auto L = B.beginCountedLoop(0, static_cast<int64_t>(N));
    int Addr = B.add(RgbBase, B.mul(L.IndVar, B.movi(3)));
    int R = B.load(Addr, 0);
    int G = B.load(Addr, 1);
    int Bl = B.load(Addr, 2);
    int Y = B.ashr(B.add(B.add(B.mul(R, B.movi(77)), B.mul(G, B.movi(150))),
                         B.mul(Bl, B.movi(29))),
                   B.movi(8));
    int Cb = B.add(B.ashr(B.sub(Bl, Y), B.movi(1)), B.movi(128));
    int Cr = B.add(B.ashr(B.sub(R, Y), B.movi(1)), B.movi(128));
    B.store(Y, B.add(YBase, L.IndVar));
    B.store(B.max(B.min(Cb, B.movi(255)), B.movi(0)),
            B.add(CbBase, L.IndVar));
    B.store(B.max(B.min(Cr, B.movi(255)), B.movi(0)),
            B.add(CrBase, L.IndVar));
    B.endCountedLoop(L);
    B.ret();
  }

  // --- compress_block(bx, by): DCT + quantize the luma plane.
  {
    IRBuilder B(DoBlock);
    B.setInsertPoint(DoBlock->makeBlock("entry"));
    int Bx = 0, By = 1;
    int YBase = B.addrOf(YPlane);
    int CosBase = B.addrOf(CosTab);
    int TmpBase = B.addrOf(Tmp);
    int CoefBase = B.addrOf(Coef);
    emitForwardDct(B, YBase, TmpBase, CoefBase, CosBase, Bx, By);

    int QBase = B.addrOf(QLum);
    int OutBase = B.addrOf(Out);
    int BlockIdx = B.add(B.mul(By, B.movi(FrameW / 8)), Bx);
    int OutOrigin = B.add(OutBase, B.mul(BlockIdx, B.movi(64)));
    auto LQ = B.beginCountedLoop(0, 64);
    int C = B.load(B.add(CoefBase, LQ.IndVar));
    int Q = B.load(B.add(QBase, LQ.IndVar));
    int Sign = B.cmpLT(C, B.movi(0));
    int Mag = B.div(B.abs(C), B.max(Q, B.movi(1)));
    B.store(B.select(Sign, B.sub(B.movi(0), Mag), Mag),
            B.add(OutOrigin, LQ.IndVar));
    B.endCountedLoop(LQ);
    B.ret();
  }

  // --- main.
  {
    IRBuilder B(Main);
    B.setInsertPoint(Main->makeBlock("entry"));
    B.call(Convert, {}, /*WantResult=*/false);
    auto LBy = B.beginCountedLoop(0, FrameH / 8);
    auto LBx = B.beginCountedLoop(0, FrameW / 8);
    B.call(DoBlock, {LBx.IndVar, LBy.IndVar}, /*WantResult=*/false);
    B.endCountedLoop(LBx);
    B.endCountedLoop(LBy);

    int OutBase = B.addrOf(Out);
    int NonZero = B.movi(0);
    auto L = B.beginCountedLoop(0, static_cast<int64_t>(NumBlocks * 64));
    int V = B.load(B.add(OutBase, L.IndVar));
    B.emitBinaryTo(NonZero, Opcode::Add, NonZero, B.cmpNE(V, B.movi(0)));
    B.endCountedLoop(L);
    B.ret(NonZero);
  }
  return P;
}
