file(REMOVE_RECURSE
  "libgdp_ir.a"
)
