//===- profile/ExecTrace.cpp - Dynamic execution trace ----------------------===//

#include "profile/ExecTrace.h"

#include "ir/Program.h"

using namespace gdp;

void ExecTrace::reset(const Program &P) {
  Blocks.clear();
  AccessObj.assign(P.getNumFunctions(), {});
  for (unsigned F = 0; F != P.getNumFunctions(); ++F)
    AccessObj[F].resize(P.getFunction(F).getNumOpIds());
}

uint64_t ExecTrace::numAccessEvents() const {
  uint64_t N = 0;
  for (const auto &Fn : AccessObj)
    for (const auto &Stream : Fn)
      N += Stream.size();
  return N;
}
