//===- partition/RHOP.cpp - Region-level operation partitioning -------------===//

#include "partition/RHOP.h"

#include "analysis/CFG.h"
#include "analysis/DefUse.h"
#include "analysis/LoopInfo.h"
#include "analysis/OpIndex.h"
#include "machine/MachineModel.h"
#include "profile/ProfileData.h"
#include "sched/BlockDFG.h"
#include "sched/Estimator.h"
#include "support/Random.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

using namespace gdp;

namespace {

/// Event counts of one runRHOP() call, aggregated across regions and
/// flushed to telemetry once (cheap local increments on the hot path).
struct RhopStats {
  uint64_t Regions = 0;
  uint64_t CoarsenLevels = 0;
  uint64_t RefinePasses = 0;
  uint64_t GroupMoves = 0;
  uint64_t LockedOps = 0;
};

/// Buffers reused across every region and pass of one runRHOP() call.
struct RhopScratch {
  std::vector<unsigned> Order; ///< Shuffled group visit order.
  std::vector<unsigned> Count; ///< Ops per cluster (balance tie-break).
};

/// Everything about one region that does not depend on the evolving
/// assignment: the estimator's precomputed tables, the slack-weighted
/// coarsening hierarchy, and per-level member lists / lock summaries.
/// Locks are fixed for the whole runRHOP() call and coarsening consumes
/// no randomness, so the plan is identical across function passes —
/// build it once per block and sweep it as often as needed.
struct RegionPlan {
  bool Built = false;
  std::vector<unsigned> OpIds; ///< local op → function-wide op id
  std::vector<int> LockOf;     ///< local op → locked cluster or -1
  std::vector<std::pair<unsigned, int>> LockedAssigns; ///< (op id, cluster)
  unsigned Levels = 0;
  /// LevelMembers[level][group] — member local indices per group.
  std::vector<std::vector<std::vector<unsigned>>> LevelMembers;
  /// LevelGroupLock[level][group] — pinned cluster or -1.
  std::vector<std::vector<int>> LevelGroupLock;
  std::optional<ScheduleEstimator> Est;
};

/// Slack-derived weight per DFG edge index (data edges only; 0 others).
std::vector<uint64_t> computeSlackWeights(const BlockDFG &DFG,
                                          const MachineModel &MM) {
  unsigned N = DFG.size();
  auto Lat = [&](unsigned I) {
    return MM.getLatency(DFG.getOp(I).getOpcode());
  };
  auto Delay = [&](const BlockDFG::Edge &E) -> unsigned {
    switch (E.Kind) {
    case BlockDFG::EdgeKind::Data:
      return Lat(E.From);
    case BlockDFG::EdgeKind::Mem:
      return 1;
    case BlockDFG::EdgeKind::Order:
      return 0;
    }
    return 0;
  };

  // ASAP (program order is topological).
  std::vector<unsigned> ASAP(N, 0);
  unsigned Len = 0;
  for (unsigned I = 0; I != N; ++I) {
    for (unsigned E : DFG.preds(I)) {
      const auto &Edge = DFG.edges()[E];
      ASAP[I] = std::max(ASAP[I], ASAP[Edge.From] + Delay(Edge));
    }
    Len = std::max(Len, ASAP[I] + std::max(1u, Lat(I)));
  }
  // ALAP.
  std::vector<unsigned> ALAP(N, Len);
  for (unsigned I = N; I-- > 0;) {
    ALAP[I] = Len - std::max(1u, Lat(I));
    for (unsigned E : DFG.succs(I)) {
      const auto &Edge = DFG.edges()[E];
      unsigned Bound = ALAP[Edge.To] >= Delay(Edge)
                           ? ALAP[Edge.To] - Delay(Edge)
                           : 0;
      ALAP[I] = std::min(ALAP[I], Bound);
    }
  }

  // Edge weight: (maxSlack + 1 - slack) for data edges, so slack-0 edges
  // coarsen first (paper §3.4: low slack ⇒ high weight ⇒ critical).
  std::vector<uint64_t> EdgeWeight(DFG.edges().size(), 0);
  unsigned MaxSlack = 0;
  std::vector<unsigned> Slack(DFG.edges().size(), 0);
  for (unsigned E = 0; E != DFG.edges().size(); ++E) {
    const auto &Edge = DFG.edges()[E];
    if (Edge.Kind != BlockDFG::EdgeKind::Data)
      continue;
    unsigned S = ALAP[Edge.To] - std::min(ALAP[Edge.To],
                                          ASAP[Edge.From] + Delay(Edge));
    Slack[E] = S;
    MaxSlack = std::max(MaxSlack, S);
  }
  for (unsigned E = 0; E != DFG.edges().size(); ++E)
    if (DFG.edges()[E].Kind == BlockDFG::EdgeKind::Data)
      EdgeWeight[E] = MaxSlack + 1 - Slack[E];
  return EdgeWeight;
}

void buildPlan(RegionPlan &Plan, const BlockDFG &DFG, const MachineModel &MM,
               const std::vector<int> *Locks, const RHOPOptions &Opt) {
  unsigned N = DFG.size();
  Plan.OpIds.resize(N);
  Plan.LockOf.assign(N, -1);
  for (unsigned I = 0; I != N; ++I) {
    Plan.OpIds[I] = static_cast<unsigned>(DFG.getOp(I).getId());
    if (Locks) {
      int L = (*Locks)[Plan.OpIds[I]];
      Plan.LockOf[I] = L;
      if (L >= 0)
        Plan.LockedAssigns.push_back({Plan.OpIds[I], L});
    }
  }
  Plan.Built = true;
  if (MM.getNumClusters() == 1)
    return; // Locks are all a single-cluster machine needs.

  Plan.Est.emplace(DFG, MM);
  std::vector<uint64_t> EdgeWeight = computeSlackWeights(DFG, MM);

  // --- Coarsen: heaviest-edge matching over slack weights.
  // GroupOf[level][local op] — group ids at each coarsening level.
  std::vector<std::vector<unsigned>> GroupOfLevel;
  std::vector<unsigned> NumGroupsAt;

  // Level 0: singletons.
  std::vector<unsigned> Current(N);
  for (unsigned I = 0; I != N; ++I)
    Current[I] = I;
  unsigned NumGroups = N;
  GroupOfLevel.push_back(Current);
  NumGroupsAt.push_back(NumGroups);

  unsigned Target = std::max(Opt.MinGroups, 2 * MM.getNumClusters());

  while (NumGroups > Target) {
    // Aggregate inter-group edge weights at the current level.
    std::map<std::pair<unsigned, unsigned>, uint64_t> GroupEdges;
    for (unsigned E = 0; E != DFG.edges().size(); ++E) {
      if (EdgeWeight[E] == 0)
        continue;
      unsigned A = Current[DFG.edges()[E].From];
      unsigned B = Current[DFG.edges()[E].To];
      if (A == B)
        continue;
      if (A > B)
        std::swap(A, B);
      GroupEdges[{A, B}] += EdgeWeight[E];
    }
    if (GroupEdges.empty())
      break;

    // Group locks at this level (-1 free; ≥0 pinned; merging two groups
    // pinned to different clusters is forbidden).
    std::vector<int> GroupLock(NumGroups, -1);
    for (unsigned I = 0; I != N; ++I) {
      int L = Plan.LockOf[I];
      if (L < 0)
        continue;
      assert((GroupLock[Current[I]] < 0 || GroupLock[Current[I]] == L) &&
             "conflicting locks fused during coarsening");
      GroupLock[Current[I]] = L;
    }

    // Heaviest-edge matching: each group merged at most once per stage.
    std::vector<std::pair<uint64_t, std::pair<unsigned, unsigned>>> Sorted;
    Sorted.reserve(GroupEdges.size());
    for (const auto &[Key, W] : GroupEdges)
      Sorted.push_back({W, Key});
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto &A, const auto &B) {
                if (A.first != B.first)
                  return A.first > B.first;
                return A.second < B.second;
              });

    std::vector<int> MergeInto(NumGroups, -1);
    std::vector<bool> Matched(NumGroups, false);
    unsigned NumMerges = 0;
    for (const auto &[W, Pair] : Sorted) {
      auto [A, B] = Pair;
      if (Matched[A] || Matched[B])
        continue;
      if (GroupLock[A] >= 0 && GroupLock[B] >= 0 &&
          GroupLock[A] != GroupLock[B])
        continue;
      if (NumGroups - NumMerges <= Target)
        break;
      Matched[A] = Matched[B] = true;
      MergeInto[B] = static_cast<int>(A);
      ++NumMerges;
    }
    if (NumMerges == 0)
      break;

    // Renumber into the next level.
    std::vector<int> NewId(NumGroups, -1);
    unsigned Next = 0;
    for (unsigned G = 0; G != NumGroups; ++G) {
      if (MergeInto[G] >= 0)
        continue;
      NewId[G] = static_cast<int>(Next++);
    }
    for (unsigned G = 0; G != NumGroups; ++G)
      if (MergeInto[G] >= 0)
        NewId[G] = NewId[static_cast<unsigned>(MergeInto[G])];

    for (unsigned I = 0; I != N; ++I)
      Current[I] = static_cast<unsigned>(NewId[Current[I]]);
    NumGroups = Next;
    GroupOfLevel.push_back(Current);
    NumGroupsAt.push_back(NumGroups);
  }

  // --- Per-level member lists and lock summaries.
  Plan.Levels = static_cast<unsigned>(GroupOfLevel.size());
  Plan.LevelMembers.resize(Plan.Levels);
  Plan.LevelGroupLock.resize(Plan.Levels);
  for (unsigned Level = 0; Level != Plan.Levels; ++Level) {
    const auto &GroupOf = GroupOfLevel[Level];
    unsigned Groups = NumGroupsAt[Level];
    auto &Members = Plan.LevelMembers[Level];
    auto &GroupLock = Plan.LevelGroupLock[Level];
    Members.assign(Groups, {});
    GroupLock.assign(Groups, -1);
    for (unsigned I = 0; I != N; ++I) {
      Members[GroupOf[I]].push_back(I);
      int L = Plan.LockOf[I];
      if (L >= 0)
        GroupLock[GroupOf[I]] = L;
    }
  }
}

void refineLevel(const RegionPlan &Plan, unsigned Level,
                 std::vector<int> &Assign, const MachineModel &MM,
                 const RHOPOptions &Opt, Random &RNG, RhopStats &RS,
                 RhopScratch &Scratch) {
  const auto &Members = Plan.LevelMembers[Level];
  const auto &GroupLock = Plan.LevelGroupLock[Level];
  const ScheduleEstimator &Est = *Plan.Est;
  unsigned NumClusters = MM.getNumClusters();
  unsigned NumGroups = static_cast<unsigned>(Members.size());

  // Ops-per-cluster table for the balance tie-break, maintained
  // incrementally as groups move (no full rescan per candidate).
  auto &Count = Scratch.Count;
  Count.assign(NumClusters, 0);
  for (unsigned Id : Plan.OpIds)
    ++Count[static_cast<unsigned>(Assign[Id])];

  auto SetGroup = [&](unsigned G, int From, int To) {
    if (From == To)
      return;
    for (unsigned Local : Members[G])
      Assign[Plan.OpIds[Local]] = To;
    unsigned Size = static_cast<unsigned>(Members[G].size());
    Count[static_cast<unsigned>(From)] -= Size;
    Count[static_cast<unsigned>(To)] += Size;
  };
  auto OpBalance = [&]() {
    // Max ops on any one cluster — the tie-break metric.
    return *std::max_element(Count.begin(), Count.end());
  };

  // Persistent, deterministically shuffled visit order.
  auto &Order = Scratch.Order;
  for (unsigned Pass = 0; Pass != Opt.MaxRefinePasses; ++Pass) {
    bool Moved = false;
    Order.resize(NumGroups);
    for (unsigned G = 0; G != NumGroups; ++G)
      Order[G] = G;
    for (unsigned I = NumGroups; I > 1; --I)
      std::swap(Order[I - 1], Order[RNG.nextBelow(I)]);

    for (unsigned G : Order) {
      if (GroupLock[G] >= 0 || Members[G].empty())
        continue;
      int Cur = Assign[Plan.OpIds[Members[G][0]]];
      // Lexicographic objective: estimated schedule length, then
      // intercluster transfer count (moves the estimate hides still cost
      // real bandwidth and energy), then operation balance.
      auto Score = [&]() {
        unsigned Moves;
        unsigned Len = Est.estimateWithMoves(Assign, Moves);
        return std::make_tuple(Len, Moves, OpBalance());
      };
      auto BestScore = Score();
      int Best = Cur;
      int At = Cur; // where the group currently sits during trials
      for (unsigned C = 0; C != NumClusters; ++C) {
        if (static_cast<int>(C) == Cur)
          continue;
        SetGroup(G, At, static_cast<int>(C));
        At = static_cast<int>(C);
        auto S = Score();
        if (S < BestScore) {
          Best = static_cast<int>(C);
          BestScore = S;
        }
      }
      SetGroup(G, At, Best);
      if (Best != Cur) {
        Moved = true;
        ++RS.GroupMoves;
      }
    }
    ++RS.RefinePasses;
    if (!Moved)
      break;
  }
}

/// One refinement sweep over one region: apply locks, then uncoarsen the
/// cached hierarchy from the top, refining at every level.
void runRegion(const BlockDFG &DFG, RegionPlan &Plan, const MachineModel &MM,
               const std::vector<int> *Locks, std::vector<int> &Assign,
               const RHOPOptions &Opt, Random &RNG, RhopStats &RS,
               RhopScratch &Scratch) {
  unsigned N = DFG.size();
  if (N == 0)
    return;
  if (!Plan.Built)
    buildPlan(Plan, DFG, MM, Locks, Opt);
  ++RS.Regions;

  // Apply locks up front; locked operations never move.
  for (const auto &[Id, L] : Plan.LockedAssigns) {
    Assign[Id] = L;
    ++RS.LockedOps;
  }
  if (MM.getNumClusters() == 1)
    return;

  RS.CoarsenLevels += Plan.Levels - 1;

  for (unsigned Level = Plan.Levels; Level-- > 0;) {
    const auto &Members = Plan.LevelMembers[Level];
    const auto &GroupLock = Plan.LevelGroupLock[Level];
    // Groups must start internally consistent: align every member with
    // the group's representative (locks win).
    for (unsigned G = 0; G != Members.size(); ++G) {
      if (Members[G].empty())
        continue;
      int Cluster = GroupLock[G] >= 0
                        ? GroupLock[G]
                        : Assign[Plan.OpIds[Members[G][0]]];
      for (unsigned Local : Members[G])
        if (Plan.LockOf[Local] < 0)
          Assign[Plan.OpIds[Local]] = Cluster;
    }
    refineLevel(Plan, Level, Assign, MM, Opt, RNG, RS, Scratch);
  }
}

} // namespace

ClusterAssignment gdp::runRHOP(const Program &P, const ProfileData &Prof,
                               const MachineModel &MM, const LockMap *Locks,
                               const RHOPOptions &Opt) {
  (void)Prof; // Frequencies shape the program-level pass; regions are
              // independent here (each block optimized on its own).
  ClusterAssignment CA(P);
  Random RNG(Opt.Seed);
  RhopStats RS;
  RhopScratch Scratch;

  for (unsigned F = 0; F != P.getNumFunctions(); ++F) {
    const Function &Fn = P.getFunction(F);
    OpIndex OI(Fn);
    DefUse DU(Fn);
    CFG Cfg(Fn);
    LoopInfo LI(Fn, Cfg);
    const std::vector<int> *FuncLocks = Locks ? &(*Locks)[F] : nullptr;

    // Prebuild region DFGs and (lazily) their plans once; sweeps reuse
    // them across function passes.
    std::vector<BlockDFG> DFGs;
    DFGs.reserve(Fn.getNumBlocks());
    for (unsigned B = 0; B != Fn.getNumBlocks(); ++B)
      DFGs.emplace_back(Fn, Fn.getBlock(B), DU, OI, &LI);
    std::vector<RegionPlan> Plans(Fn.getNumBlocks());

    for (unsigned Pass = 0; Pass != std::max(1u, Opt.NumFunctionPasses);
         ++Pass)
      for (int B : Cfg.reversePostOrder()) {
        unsigned BI = static_cast<unsigned>(B);
        runRegion(DFGs[BI], Plans[BI], MM, FuncLocks, CA.func(F), Opt, RNG,
                  RS, Scratch);
      }
  }

  if (telemetry::enabled()) {
    telemetry::counter("rhop.runs");
    telemetry::counter("rhop.regions", RS.Regions);
    telemetry::counter("rhop.coarsen_levels", RS.CoarsenLevels);
    telemetry::counter("rhop.refine_passes", RS.RefinePasses);
    telemetry::counter("rhop.group_moves", RS.GroupMoves);
    telemetry::counter("rhop.locked_ops", RS.LockedOps);
  }
  return CA;
}
