//===- ir/BasicBlock.h - Straight-line operation sequence -------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: a straight-line sequence of operations ending in a
/// terminator. Blocks are the scheduling regions of the second-pass
/// computation partitioner (RHOP operates region-at-a-time; we use basic
/// blocks as regions).
///
//===----------------------------------------------------------------------===//

#ifndef GDP_IR_BASICBLOCK_H
#define GDP_IR_BASICBLOCK_H

#include "ir/Operation.h"

#include <memory>
#include <string>
#include <vector>

namespace gdp {

class Function;

/// A basic block. Owns its operations; block ids are dense within the
/// enclosing function and double as branch-target identifiers.
class BasicBlock {
public:
  BasicBlock(int Id, std::string Name) : Id(Id), Name(std::move(Name)) {}

  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  int getId() const { return Id; }
  const std::string &getName() const { return Name; }

  Function *getParent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  /// Appends \p Op, taking ownership, and returns the raw pointer.
  Operation *append(std::unique_ptr<Operation> Op);

  /// Deletes the operation at position \p I. Operation ids become sparse;
  /// analyses must be recomputed afterwards.
  void removeOp(unsigned I);

  unsigned size() const { return static_cast<unsigned>(Ops.size()); }
  bool empty() const { return Ops.empty(); }

  Operation &getOp(unsigned I) {
    assert(I < Ops.size() && "operation index out of range");
    return *Ops[I];
  }
  const Operation &getOp(unsigned I) const {
    assert(I < Ops.size() && "operation index out of range");
    return *Ops[I];
  }

  const std::vector<std::unique_ptr<Operation>> &operations() const {
    return Ops;
  }

  /// Returns the terminator, or null if the block is empty or unterminated
  /// (only valid transiently during construction).
  const Operation *getTerminator() const;

  /// Ids of the blocks this block can branch to (empty for Ret blocks).
  std::vector<int> successorIds() const;

private:
  int Id;
  std::string Name;
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Operation>> Ops;
};

} // namespace gdp

#endif // GDP_IR_BASICBLOCK_H
