file(REMOVE_RECURSE
  "libgdp_analysis.a"
)
