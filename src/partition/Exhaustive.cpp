//===- partition/Exhaustive.cpp - Exhaustive placement search ---------------===//

#include "partition/Exhaustive.h"

#include "sched/ListScheduler.h"

#include <cassert>

using namespace gdp;

ExhaustiveResult gdp::exhaustiveSearch(const PreparedProgram &PP,
                                       const PipelineOptions &Opt) {
  assert(PP.Ok && "prepareProgram() must succeed first");
  const Program &P = *PP.P;
  unsigned N = P.getNumObjects();
  assert(N <= MaxExhaustiveObjects &&
         "exhaustive search is only feasible for small object counts");

  PipelineOptions Local = Opt;
  Local.Strategy = StrategyKind::GDP; // Partitioned-memory machine.
  MachineModel MM = machineFor(Local);
  assert(MM.getNumClusters() == 2 &&
         "exhaustive placement enumeration assumes 2 clusters");

  ExhaustiveResult Result;
  uint64_t NumMasks = 1ULL << N;
  Result.Points.reserve(NumMasks);

  for (uint64_t Mask = 0; Mask != NumMasks; ++Mask) {
    DataPlacement Placement(N);
    for (unsigned Obj = 0; Obj != N; ++Obj)
      Placement.setHome(Obj, static_cast<int>((Mask >> Obj) & 1));
    LockMap Locks = buildLockMap(P, Placement, PP.Prof);
    ClusterAssignment CA = runRHOP(P, PP.Prof, MM, &Locks, Local.RhopOpt);
    ProgramSchedule PS = scheduleProgram(P, PP.Prof, MM, CA);

    ExhaustivePoint Pt;
    Pt.Mask = Mask;
    Pt.Cycles = PS.TotalCycles;
    Pt.Imbalance = Placement.sizeImbalance(P, 2);
    if (Mask == 0 || Pt.Cycles < Result.BestCycles)
      Result.BestCycles = Pt.Cycles;
    if (Mask == 0 || Pt.Cycles > Result.WorstCycles)
      Result.WorstCycles = Pt.Cycles;
    Result.Points.push_back(Pt);
  }

  // Where the two partitioners land in this space.
  auto MaskOf = [&](const DataPlacement &Placement) {
    uint64_t Mask = 0;
    for (unsigned Obj = 0; Obj != N; ++Obj)
      if (Placement.getHome(Obj) == 1)
        Mask |= 1ULL << Obj;
    return Mask;
  };
  Local.Strategy = StrategyKind::GDP;
  Result.GDPMask = MaskOf(runStrategy(PP, Local).Placement);
  Local.Strategy = StrategyKind::ProfileMax;
  Result.ProfileMaxMask = MaskOf(runStrategy(PP, Local).Placement);
  return Result;
}
