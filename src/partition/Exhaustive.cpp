//===- partition/Exhaustive.cpp - Exhaustive placement search ---------------===//

#include "partition/Exhaustive.h"

#include "sched/ListScheduler.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>

using namespace gdp;

namespace {

/// Partial optimum of one contiguous mask chunk: lowest cycles first, then
/// lowest mask — exactly what the serial loop's "first strict improvement
/// wins" scan produces within the chunk.
struct ChunkOptimum {
  uint64_t BestCycles = 0;
  uint64_t BestMask = 0;
  uint64_t WorstCycles = 0;
  uint64_t WorstMask = 0;
};

} // namespace

ExhaustiveResult gdp::exhaustiveSearch(const PreparedProgram &PP,
                                       const PipelineOptions &Opt,
                                       unsigned Threads) {
  assert(PP.Ok && "prepareProgram() must succeed first");
  const Program &P = *PP.P;
  unsigned N = P.getNumObjects();
  assert(N <= MaxExhaustiveObjects &&
         "exhaustive search is only feasible for small object counts");
  if (Threads == 0)
    Threads = support::threadCountFromEnv();

  PipelineOptions Local = Opt;
  Local.Strategy = StrategyKind::GDP; // Partitioned-memory machine.
  MachineModel MM = machineFor(Local);
  assert(MM.getNumClusters() == 2 &&
         "exhaustive placement enumeration assumes 2 clusters");

  ExhaustiveResult Result;
  uint64_t NumMasks = 1ULL << N;
  Result.Points.resize(NumMasks);

  // Evaluates one placement into its preassigned slot (disjoint writes, so
  // the parallel chunks need no synchronization on Points).
  auto EvalMask = [&](uint64_t Mask) {
    DataPlacement Placement(N);
    for (unsigned Obj = 0; Obj != N; ++Obj)
      Placement.setHome(Obj, static_cast<int>((Mask >> Obj) & 1));
    LockMap Locks = buildLockMap(P, Placement, PP.Prof);
    ClusterAssignment CA = runRHOP(P, PP.Prof, MM, &Locks, Local.RhopOpt);
    ProgramSchedule PS = scheduleProgram(P, PP.Prof, MM, CA);

    ExhaustivePoint &Pt = Result.Points[Mask];
    Pt.Mask = Mask;
    Pt.Cycles = PS.TotalCycles;
    Pt.Imbalance = Placement.sizeImbalance(P, 2);
  };

  if (Threads <= 1) {
    // Serial scan, first strict improvement wins (= lowest mask on ties).
    for (uint64_t Mask = 0; Mask != NumMasks; ++Mask) {
      EvalMask(Mask);
      const ExhaustivePoint &Pt = Result.Points[Mask];
      if (Mask == 0 || Pt.Cycles < Result.BestCycles) {
        Result.BestCycles = Pt.Cycles;
        Result.BestMask = Mask;
      }
      if (Mask == 0 || Pt.Cycles > Result.WorstCycles) {
        Result.WorstCycles = Pt.Cycles;
        Result.WorstMask = Mask;
      }
    }
  } else {
    // Contiguous chunks over the mask space; enough chunks per thread to
    // even out the load (placements differ wildly in RHOP cost).
    uint64_t NumChunks = std::min<uint64_t>(NumMasks, Threads * 8ull);
    uint64_t ChunkSize = (NumMasks + NumChunks - 1) / NumChunks;
    NumChunks = (NumMasks + ChunkSize - 1) / ChunkSize;

    telemetry::TelemetrySession *Parent = telemetry::session();
    std::vector<std::unique_ptr<telemetry::TelemetrySession>> Shards(
        NumChunks);
    std::vector<ChunkOptimum> Optima(NumChunks);

    support::ThreadPool Pool(Threads - 1);
    Pool.parallelFor(0, NumChunks, [&](size_t Chunk) {
      // Per-task telemetry shard: counters recorded here merge into the
      // parent at join time, in chunk order, keeping totals exact.
      std::optional<telemetry::ScopedSession> Scope;
      if (Parent) {
        Shards[Chunk] = std::make_unique<telemetry::TelemetrySession>();
        Scope.emplace(*Shards[Chunk]);
      }
      uint64_t Begin = Chunk * ChunkSize;
      uint64_t End = std::min(NumMasks, Begin + ChunkSize);
      ChunkOptimum &O = Optima[Chunk];
      for (uint64_t Mask = Begin; Mask != End; ++Mask) {
        EvalMask(Mask);
        const ExhaustivePoint &Pt = Result.Points[Mask];
        if (Mask == Begin || Pt.Cycles < O.BestCycles) {
          O.BestCycles = Pt.Cycles;
          O.BestMask = Mask;
        }
        if (Mask == Begin || Pt.Cycles > O.WorstCycles) {
          O.WorstCycles = Pt.Cycles;
          O.WorstMask = Mask;
        }
      }
    });

    // Deterministic reduction in chunk order: strict improvement only, so
    // the lowest mask wins ties exactly as in the serial scan.
    for (uint64_t Chunk = 0; Chunk != NumChunks; ++Chunk) {
      const ChunkOptimum &O = Optima[Chunk];
      if (Chunk == 0 || O.BestCycles < Result.BestCycles) {
        Result.BestCycles = O.BestCycles;
        Result.BestMask = O.BestMask;
      }
      if (Chunk == 0 || O.WorstCycles > Result.WorstCycles) {
        Result.WorstCycles = O.WorstCycles;
        Result.WorstMask = O.WorstMask;
      }
      if (Parent && Shards[Chunk])
        Parent->mergeFrom(*Shards[Chunk]);
    }
  }
  telemetry::counter("exhaustive.points", NumMasks);

  // Where the two partitioners land in this space.
  auto MaskOf = [&](const DataPlacement &Placement) {
    uint64_t Mask = 0;
    for (unsigned Obj = 0; Obj != N; ++Obj)
      if (Placement.getHome(Obj) == 1)
        Mask |= 1ULL << Obj;
    return Mask;
  };
  Local.Strategy = StrategyKind::GDP;
  Result.GDPMask = MaskOf(runStrategy(PP, Local).Placement);
  Local.Strategy = StrategyKind::ProfileMax;
  Result.ProfileMaxMask = MaskOf(runStrategy(PP, Local).Placement);
  return Result;
}
