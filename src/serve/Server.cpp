//===- serve/Server.cpp - gdpd accept/dispatch loop -------------------------===//

#include "serve/Server.h"

#include "partition/PreparedCache.h"
#include "support/FaultInjector.h"
#include "support/MetricsHub.h"
#include "support/StrUtil.h"

#include <chrono>

using namespace gdp;
using namespace gdp::serve;
using support::Diag;
using support::errorDiag;
using support::Socket;
using support::StatusCode;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

} // namespace

Server::Server(const ServerOptions &Opt, Service &Svc, Backend &B)
    : Opt(Opt), Svc(Svc), B(B),
      Pool(Opt.Threads > 0 ? Opt.Threads - 1 : 0) {}

bool Server::start(std::vector<Diag> &Diags) {
  return Listener.listen(Opt.Listen, Diags);
}

const support::SockAddr &Server::boundAddr() const {
  return Listener.boundAddr();
}

bool Server::sendFrame(Socket &Conn, Verb V, Status S,
                       const std::string &Payload) {
  if (support::faultAt("serve.reply")) {
    // Drop the response on the floor and close the connection: the client
    // sees EOF where a frame was due — exactly what a server crash between
    // executing a request and answering it looks like. The coordinator's
    // retry path must absorb this (the request may have executed!).
    Svc.registry().addCounter("serve.reply_faults", 1);
    Conn.close();
    return false;
  }
  std::string F = encodeFrame(V, S, Payload);
  return Conn.sendAll(F.data(), F.size(), Opt.IoTimeoutMs, nullptr);
}

std::string Server::pingBody() const {
  return formatStr(
      "{\"server\": \"gdpd\", \"role\": \"%s\", \"addr\": \"%s\", "
      "\"threads\": %u, \"max_inflight\": %llu, \"cache_capacity\": %llu, "
      "\"deterministic\": %s}\n",
      B.role(), Listener.boundAddr().str().c_str(), Opt.Threads,
      static_cast<unsigned long long>(Opt.MaxInflight),
      static_cast<unsigned long long>(
          PreparedProgramCache::global().capacity()),
      Svc.options().Deterministic ? "true" : "false");
}

std::string Server::statsBody(StatsFormat Fmt, Status &S) {
  // One merged snapshot: the local service registry plus whatever the
  // backend aggregates (a coordinator pulls each shard here). Gauges that
  // only exist at snapshot time are stamped in as counters.
  telemetry::StatsRegistry Snap;
  Snap.mergeFrom(Svc.registry());
  std::vector<Diag> Diags;
  bool AllSources = B.collectStats(Snap, Diags);
  Snap.addCounter("serve.inflight", Inflight.load(std::memory_order_relaxed));
  Snap.addCounter("serve.cache_capacity",
                  PreparedProgramCache::global().capacity());
  Snap.addCounter("serve.cache_resident",
                  PreparedProgramCache::global().size());
  Snap.addCounter("serve.threads", Opt.Threads);
  Snap.addCounter("serve.max_inflight", Opt.MaxInflight);
  if (!AllSources) {
    S = Status::Unavailable;
    return diagsBody(Diags);
  }
  S = Status::Ok;
  switch (Fmt) {
  case StatsFormat::Json:
    return Snap.toJson();
  case StatsFormat::Prometheus:
    return telemetry::MetricsHub::renderPrometheus(Snap);
  case StatsFormat::Binary:
    return encodeRegistry(Snap);
  }
  S = Status::BadRequest;
  return diagsBody({errorDiag(StatusCode::UsageError, "serve.stats",
                              "unknown stats format")});
}

bool Server::handleFrame(Socket &Conn, const Frame &F) {
  auto Start = Clock::now();
  if (support::faultAt("serve.dispatch")) {
    Diag D = support::injectedFaultDiag("serve.dispatch");
    Svc.recordRequest(F.V, Status::InternalError, false, msSince(Start));
    sendFrame(Conn, F.V, Status::InternalError, diagsBody({D}));
    return false;
  }

  switch (F.V) {
  case Verb::Ping: {
    Svc.recordRequest(F.V, Status::Ok, false, msSince(Start));
    return sendFrame(Conn, F.V, Status::Ok, pingBody());
  }
  case Verb::Partition: {
    PartitionRequest Req;
    Diag D;
    if (!PartitionRequest::decode(F.Payload, Req, D)) {
      Svc.recordRequest(F.V, Status::BadRequest, false, msSince(Start));
      sendFrame(Conn, F.V, Status::BadRequest, diagsBody({D}));
      return false;
    }
    if (stopRequested()) {
      // Connections already admitted still answer, but new work on them
      // is turned away once the drain started.
      Svc.recordRequest(F.V, Status::ShuttingDown, false, msSince(Start));
      sendFrame(Conn, F.V, Status::ShuttingDown,
                diagsBody({errorDiag(StatusCode::Cancelled, "serve.admit",
                                     "server is draining")}));
      return false;
    }
    PartitionOutcome R = B.partition(Req, &Drain);
    Svc.recordRequest(F.V, R.S, R.CacheHit, msSince(Start));
    // Request-level failures (bad spec, deadline, …) leave the framing in
    // sync, so the connection stays open for the next request.
    return sendFrame(Conn, F.V, R.S, R.Body);
  }
  case Verb::Stats: {
    StatsFormat Fmt = StatsFormat::Json;
    if (!F.Payload.empty()) {
      uint8_t Raw = static_cast<uint8_t>(F.Payload[0]);
      if (Raw > static_cast<uint8_t>(StatsFormat::Binary)) {
        Svc.recordRequest(F.V, Status::BadRequest, false, msSince(Start));
        sendFrame(Conn, F.V, Status::BadRequest,
                  diagsBody({errorDiag(StatusCode::UsageError, "serve.stats",
                                       "unknown stats format byte")
                                 .with("format",
                                       static_cast<int64_t>(Raw))}));
        return false;
      }
      Fmt = static_cast<StatsFormat>(Raw);
    }
    Status S = Status::Ok;
    std::string Body = statsBody(Fmt, S);
    Svc.recordRequest(F.V, S, false, msSince(Start));
    return sendFrame(Conn, F.V, S, Body);
  }
  case Verb::Shutdown: {
    B.forwardShutdown();
    Svc.recordRequest(F.V, Status::Ok, false, msSince(Start));
    sendFrame(Conn, F.V, Status::Ok, "{\"stopping\": true}\n");
    requestStop();
    return false;
  }
  }
  Svc.recordRequest(F.V, Status::BadRequest, false, msSince(Start));
  sendFrame(Conn, F.V, Status::BadRequest,
            diagsBody({errorDiag(StatusCode::InputError, "serve.frame",
                                 "unknown verb")}));
  return false;
}

void Server::handleConnection(Socket Conn) {
  support::FaultScope Faults(Opt.Faults, "conn");
  FrameReader Reader;
  char Buf[4096];
  // One connection serves sequential requests until EOF, an error frame,
  // or a protocol violation. recvAll is sized by the decoder's wanted()
  // so a blocking read never overshoots into the next frame's bytes.
  bool MidFrame = false; // Bytes of the current frame already arrived.
  for (;;) {
    size_t Want = Reader.wanted();
    if (Want > 0) {
      // Wait for bytes in poll ticks so the drain can reap this
      // connection the moment it is idle *between* frames — a keep-alive
      // client must not stall shutdown for a full I/O timeout. A frame
      // already under way still gets IoTimeoutMs to finish.
      int Ready = 0;
      for (double WaitedMs = 0; WaitedMs < Opt.IoTimeoutMs;
           WaitedMs += 100) {
        if (!MidFrame && stopRequested())
          return;
        Ready = Conn.waitReadable(/*TimeoutMs=*/100);
        if (Ready != 0)
          break;
      }
      if (Ready <= 0)
        return; // I/O timeout or poll error.
      size_t Chunk = Want < sizeof(Buf) ? Want : sizeof(Buf);
      size_t Got = Conn.recvAll(Buf, Chunk, Opt.IoTimeoutMs, nullptr);
      if (Got == 0)
        return; // EOF (clean between frames, mid-frame disconnect inside).
      Reader.feed(Buf, Got);
      if (Got < Chunk)
        return; // recvAll already retried until timeout/EOF: give up so a
                // silent client cannot pin this worker forever.
      MidFrame = true;
    }
    Frame F;
    Diag D;
    int Rc = Reader.next(F, D);
    if (Rc == 0)
      continue;
    MidFrame = false;
    if (Rc < 0) {
      // Malformed stream: answer with the diagnostic, then drop the
      // connection (framing is unrecoverable once poisoned).
      Svc.recordRequest(Verb::Ping, Status::BadRequest, false, 0);
      sendFrame(Conn, Verb::Ping, Status::BadRequest, diagsBody({D}));
      return;
    }
    if (!handleFrame(Conn, F))
      return;
  }
}

int Server::run() {
  support::FaultScope Faults(Opt.Faults, "serve");
  std::vector<std::future<void>> Handlers;
  auto PruneHandlers = [&] {
    size_t Kept = 0;
    for (auto &H : Handlers)
      if (H.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
        Handlers[Kept++] = std::move(H);
    Handlers.resize(Kept);
  };

  while (!stopRequested()) {
    bool TimedOut = false;
    Socket Conn = Listener.accept(/*TimeoutMs=*/100, TimedOut);
    if (!Conn.valid()) {
      if (TimedOut)
        PruneHandlers();
      continue;
    }
    if (support::faultAt("serve.accept")) {
      Diag D = support::injectedFaultDiag("serve.accept");
      Svc.registry().addCounter("serve.accept_faults", 1);
      std::string F = encodeFrame(Verb::Ping, Status::InternalError,
                                  diagsBody({D}));
      Conn.sendAll(F.data(), F.size(), /*TimeoutMs=*/1000, nullptr);
      continue;
    }
    if (Inflight.load(std::memory_order_relaxed) >= Opt.MaxInflight) {
      // Admission control: shed instead of queueing. The response frame
      // carries the ping verb because no request was read yet.
      Diag D = errorDiag(StatusCode::BudgetExhausted, "serve.admit",
                         "server at capacity; request shed")
                   .with("max_inflight",
                         static_cast<uint64_t>(Opt.MaxInflight));
      Svc.recordRequest(Verb::Ping, Status::Overloaded, false, 0);
      Svc.registry().addCounter("serve.shed", 1);
      std::string F = encodeFrame(Verb::Ping, Status::Overloaded,
                                  diagsBody({D}));
      Conn.sendAll(F.data(), F.size(), /*TimeoutMs=*/1000, nullptr);
      continue;
    }
    Inflight.fetch_add(1, std::memory_order_relaxed);
    auto Shared = std::make_shared<Socket>(std::move(Conn));
    Handlers.push_back(Pool.submit([this, Shared] {
      handleConnection(std::move(*Shared));
      Inflight.fetch_sub(1, std::memory_order_relaxed);
    }));
    PruneHandlers();
  }
  Listener.close();

  // Drain: give in-flight requests DrainMs to finish, then cancel their
  // evaluation budgets and wait for the wind-down.
  bool Clean = true;
  auto DrainStart = Clock::now();
  for (auto &H : Handlers) {
    double LeftMs = Opt.DrainMs - msSince(DrainStart);
    if (LeftMs < 0)
      LeftMs = 0;
    if (H.wait_for(std::chrono::milliseconds(
            static_cast<int64_t>(LeftMs))) != std::future_status::ready) {
      Clean = false;
      Drain.cancel(); // Stragglers exit at their next budget poll.
      break;
    }
  }
  for (auto &H : Handlers)
    H.wait();

  // Flush: the cumulative serving registry becomes visible to the
  // process-wide Prometheus surface exactly once, at exit.
  Svc.registry().addCounter(Clean ? "serve.drain.clean"
                                  : "serve.drain.cancelled",
                            1);
  telemetry::MetricsHub::global().publish(Svc.registry());
  return Clean ? 0 : 3;
}
