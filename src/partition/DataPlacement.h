//===- partition/DataPlacement.h - Object→cluster placement -----*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The product of data partitioning: a home cluster for every data object.
/// Composite objects are atomic — an object lives entirely in one cluster's
/// memory (paper §2). Also provides the derived per-operation home used to
/// lock memory operations during computation partitioning.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_PARTITION_DATAPLACEMENT_H
#define GDP_PARTITION_DATAPLACEMENT_H

#include <cstdint>
#include <vector>

namespace gdp {

class Operation;
class ProfileData;
class Program;

/// A home cluster per data object. -1 means unplaced (unified memory).
class DataPlacement {
public:
  DataPlacement() = default;
  explicit DataPlacement(unsigned NumObjects) : Home(NumObjects, -1) {}

  unsigned getNumObjects() const { return static_cast<unsigned>(Home.size()); }
  int getHome(unsigned ObjectId) const { return Home[ObjectId]; }
  void setHome(unsigned ObjectId, int Cluster) { Home[ObjectId] = Cluster; }

  /// Home cluster for a memory operation: the home of the object it
  /// accesses most often per \p Prof (ties to the lower object id), or -1
  /// if its access set is empty / nothing is placed. Consistent placements
  /// (all objects of the access set on one cluster — guaranteed by the
  /// access-pattern merge) short-circuit to that cluster.
  int homeOfOp(const Operation &Op, unsigned FunctionId,
               const ProfileData &Prof) const;

  /// Bytes of placed objects per cluster (index = cluster id).
  std::vector<uint64_t> bytesPerCluster(const Program &P,
                                        unsigned NumClusters) const;

  /// Size-balance metric in [0, 1]: 0 = perfectly balanced bytes across
  /// clusters, 1 = everything on one cluster. (The shading of the paper's
  /// Figure 9.)
  double sizeImbalance(const Program &P, unsigned NumClusters) const;

private:
  std::vector<int> Home;
};

/// Per-function, per-operation lock table for the second pass: entry is the
/// required cluster for that operation, or -1 if the operation is free.
using LockMap = std::vector<std::vector<int>>;

/// Builds the lock table for \p P under \p Placement: every Load/Store is
/// pinned to its operation home; every Malloc is pinned to its site's home
/// (the allocated storage lives there). Other operations are free.
LockMap buildLockMap(const Program &P, const DataPlacement &Placement,
                     const ProfileData &Prof);

} // namespace gdp

#endif // GDP_PARTITION_DATAPLACEMENT_H
