//===- serve/Server.h - gdpd accept/dispatch loop ---------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network half of `gdpd` (docs/SERVING.md): a poll-gated accept loop
/// that dispatches each connection onto the process `ThreadPool`, with
/// admission control in front (a bounded in-flight gate — connections
/// beyond `MaxInflight` are shed immediately with an `Overloaded` frame
/// and a structured diagnostic, never queued unboundedly) and a graceful
/// drain behind (stop accepting, let in-flight requests finish within the
/// drain deadline, cancel stragglers through their evaluation budgets,
/// publish metrics, exit).
///
/// What a request *does* is a `Backend` decision: a shard executes it
/// locally (`LocalBackend`, wrapping `Service`); a coordinator hashes the
/// request key across worker shards and merges results (Coordinator.h).
/// The server itself only speaks the protocol — framing, admission,
/// lifecycle, and the Ping/Stats/Shutdown verbs — so both roles share one
/// tested loop.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_SERVE_SERVER_H
#define GDP_SERVE_SERVER_H

#include "serve/Service.h"
#include "serve/Wire.h"
#include "support/FaultInjector.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

namespace gdp {
namespace serve {

/// Executes the verbs the server cannot answer by itself. Implementations
/// must be thread-safe: the server calls them from many pool workers.
class Backend {
public:
  virtual ~Backend() = default;

  /// Executes one partition request (\p Drain cancels stragglers).
  virtual PartitionOutcome partition(const PartitionRequest &Req,
                                     support::CancelToken *Drain) = 0;

  /// Merges backend statistics into \p Into (a coordinator pulls each
  /// shard's binary snapshot here). False + diags if a source was
  /// unreachable; what was merged so far stays valid.
  virtual bool collectStats(telemetry::StatsRegistry &Into,
                            std::vector<support::Diag> &Diags) = 0;

  /// Propagates a Shutdown verb (a coordinator forwards it to every
  /// shard; a shard has nothing to forward).
  virtual void forwardShutdown() {}

  /// Role string for ping/info responses ("shard" or "coordinator").
  virtual const char *role() const = 0;
};

/// Executes partition requests in-process through a Service.
class LocalBackend : public Backend {
public:
  explicit LocalBackend(Service &Svc) : Svc(Svc) {}

  PartitionOutcome partition(const PartitionRequest &Req,
                             support::CancelToken *Drain) override {
    return Svc.partition(Req, Drain);
  }
  bool collectStats(telemetry::StatsRegistry &,
                    std::vector<support::Diag> &) override {
    return true; // Everything already lives in the service registry.
  }
  const char *role() const override { return "shard"; }

private:
  Service &Svc;
};

/// Server configuration (the gdpd flag surface).
struct ServerOptions {
  support::SockAddr Listen;
  /// True pool concurrency (maps to ThreadPool(Threads - 1); the accept
  /// loop never computes, so 1 still serves one request at a time).
  unsigned Threads = 1;
  /// Admission gate: connections handled concurrently; more are shed.
  size_t MaxInflight = 64;
  /// Per-socket I/O timeout (send/recv of one frame).
  int IoTimeoutMs = 30000;
  /// Drain deadline on shutdown: in-flight requests get this long to
  /// finish before their budgets are cancelled.
  int DrainMs = 5000;
  /// Fault-injection plan (GDP_FAULTS): the server installs a FaultScope
  /// named "serve" around the accept loop and one named "conn" around
  /// each connection, so serve.accept/serve.dispatch rules count
  /// deterministically per accept-loop / per connection.
  const support::FaultPlan *Faults = nullptr;
};

/// One serving loop. Bind with start(), then run() until a Shutdown verb
/// or requestStop() (the signal handlers' entry point) stops it.
class Server {
public:
  Server(const ServerOptions &Opt, Service &Svc, Backend &B);

  /// Binds and listens. False + diags on failure.
  bool start(std::vector<support::Diag> &Diags);

  /// Bound address (with the kernel-assigned port when Listen.Port == 0).
  const support::SockAddr &boundAddr() const;

  /// Accept/dispatch until stopped, then drain. Returns 0 on a clean
  /// drain (all in-flight requests finished), 3 if stragglers had to be
  /// cancelled.
  int run();

  /// Asks the loop to stop accepting and drain. Async-signal-safe: only
  /// sets an atomic flag, which the poll-gated accept loop observes
  /// within one poll tick.
  void requestStop() { Stop.store(true, std::memory_order_relaxed); }

  bool stopRequested() const {
    return Stop.load(std::memory_order_relaxed);
  }

private:
  void handleConnection(support::Socket Conn);
  /// Answers one decoded frame; false once the connection should close.
  bool handleFrame(support::Socket &Conn, const Frame &F);
  bool sendFrame(support::Socket &Conn, Verb V, Status S,
                 const std::string &Payload);
  std::string pingBody() const;
  std::string statsBody(StatsFormat Fmt, Status &S);

  ServerOptions Opt;
  Service &Svc;
  Backend &B;
  support::ListenSocket Listener;
  support::ThreadPool Pool;
  support::CancelToken Drain;
  std::atomic<bool> Stop{false};
  std::atomic<size_t> Inflight{0};
};

} // namespace serve
} // namespace gdp

#endif // GDP_SERVE_SERVER_H
