//===- analysis/CallGraph.cpp - Static call graph ---------------------------===//

#include "analysis/CallGraph.h"

#include "ir/Program.h"

#include <algorithm>

using namespace gdp;

CallGraph::CallGraph(const Program &P) {
  unsigned N = P.getNumFunctions();
  Callees.resize(N);
  Callers.resize(N);
  Reachable.assign(N, false);

  for (const auto &F : P.functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &Op : BB->operations()) {
        if (Op->getOpcode() != Opcode::Call)
          continue;
        unsigned Callee = static_cast<unsigned>(Op->getCallee());
        Callees[static_cast<unsigned>(F->getId())].push_back(
            static_cast<int>(Callee));
        Callers[Callee].push_back({F->getId(), Op.get()});
      }
    }
  }
  for (auto &List : Callees) {
    std::sort(List.begin(), List.end());
    List.erase(std::unique(List.begin(), List.end()), List.end());
  }

  // Reachability from the entry.
  if (P.getEntryId() >= 0 && static_cast<unsigned>(P.getEntryId()) < N) {
    std::vector<int> Worklist{P.getEntryId()};
    Reachable[static_cast<unsigned>(P.getEntryId())] = true;
    while (!Worklist.empty()) {
      int F = Worklist.back();
      Worklist.pop_back();
      for (int C : Callees[static_cast<unsigned>(F)])
        if (!Reachable[static_cast<unsigned>(C)]) {
          Reachable[static_cast<unsigned>(C)] = true;
          Worklist.push_back(C);
        }
    }
  }
}
