//===- support/StatsRegistry.h - Named counters and histograms --*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe registry of named monotonic counters, value histograms and
/// phase timers — the statistics half of the `gdp::telemetry` subsystem
/// (TELEMETRY.md / docs/OBSERVABILITY.md). Counters count deterministic
/// algorithm events (refinement moves, coarsening levels, interpreted
/// steps); timers hold wall-clock seconds and are kept separate so tests
/// can compare the deterministic part of two runs exactly.
///
/// Export is a flat JSON object with stable (sorted) key order.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_SUPPORT_STATSREGISTRY_H
#define GDP_SUPPORT_STATSREGISTRY_H

#include "support/Histogram.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gdp {
namespace telemetry {

/// Streaming summary of a series of values (count/sum/min/max), used for
/// per-event distributions such as block schedule lengths or cut weights.
struct ValueStats {
  uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;

  void add(double X) {
    if (Count == 0) {
      Min = Max = X;
    } else {
      if (X < Min)
        Min = X;
      if (X > Max)
        Max = X;
    }
    ++Count;
    Sum += X;
  }

  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }

  /// Merges another series into this one (order-independent).
  void merge(const ValueStats &O) {
    if (O.Count == 0)
      return;
    if (Count == 0) {
      *this = O;
      return;
    }
    Count += O.Count;
    Sum += O.Sum;
    if (O.Min < Min)
      Min = O.Min;
    if (O.Max > Max)
      Max = O.Max;
  }
};

/// Thread-safe collection of named statistics.
class StatsRegistry {
public:
  /// Adds \p Delta to the monotonic counter \p Name (created at 0).
  void addCounter(const std::string &Name, uint64_t Delta);

  /// Records one sample of the value histogram \p Name. Feeds both the
  /// streaming summary (ValueStats) and the log-bucketed quantile
  /// histogram, so every value metric gets p50/p90/p99 for free.
  void recordValue(const std::string &Name, double Value);

  /// Adds \p Seconds to the wall-clock timer \p Name.
  void addTime(const std::string &Name, double Seconds);

  /// Current value of a counter (0 if never touched).
  uint64_t getCounter(const std::string &Name) const;

  /// Current accumulated seconds of a timer (0 if never touched).
  double getTime(const std::string &Name) const;

  /// Snapshot of a value histogram (zero stats if never touched).
  ValueStats getValue(const std::string &Name) const;

  /// Snapshot of the quantile histogram of \p Name (empty if untouched).
  LogHistogram getQuantileHistogram(const std::string &Name) const;

  /// Quantile \p Q of the value series \p Name (0 if never touched).
  double quantile(const std::string &Name, double Q) const;

  /// Number of distinct counters.
  size_t numCounters() const;

  /// Copy of the counter table (for diffing before/after a region).
  std::map<std::string, uint64_t> counterSnapshot() const;

  /// Copy of the timer table.
  std::map<std::string, double> timerSnapshot() const;

  /// Copy of the value-summary table.
  std::map<std::string, ValueStats> valueSnapshot() const;

  /// Copy of the quantile-histogram table.
  std::map<std::string, LogHistogram> quantileSnapshot() const;

  /// Merges every counter, histogram and timer of \p O into this registry.
  void mergeFrom(const StatsRegistry &O);

  /// Merges a decoded value summary into series \p Name — the serving
  /// layer's binary stats codec reconstructs remote registries with these
  /// (serve/Wire.h); exact, like mergeFrom.
  void mergeValue(const std::string &Name, const ValueStats &V);

  /// Merges a decoded quantile histogram into series \p Name.
  void mergeQuantile(const std::string &Name, const LogHistogram &H);

  /// Drops all recorded statistics.
  void reset();

  /// Flat JSON object: {"counters":{...},"values":{name:{count,sum,min,
  /// max,mean}},"quantiles":{name:{count,p50,p90,p99}},"timers_sec":{...}}
  /// with keys in sorted order.
  std::string toJson() const;

private:
  mutable std::mutex Mu;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, ValueStats> Values;
  std::map<std::string, LogHistogram> Quantiles;
  std::map<std::string, double> Timers;
};

} // namespace telemetry
} // namespace gdp

#endif // GDP_SUPPORT_STATSREGISTRY_H
