file(REMOVE_RECURSE
  "../lib/libgdp_bench_common.a"
)
