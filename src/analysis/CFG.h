//===- analysis/CFG.h - Control-flow graph utilities ------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function control-flow graph summary: successor/predecessor lists and
/// a reverse-post-order traversal used by the dataflow solvers.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_ANALYSIS_CFG_H
#define GDP_ANALYSIS_CFG_H

#include <vector>

namespace gdp {

class Function;

/// Successor/predecessor structure of one function's CFG.
class CFG {
public:
  explicit CFG(const Function &F);

  unsigned getNumBlocks() const {
    return static_cast<unsigned>(Succs.size());
  }
  const std::vector<int> &successors(unsigned Block) const {
    return Succs[Block];
  }
  const std::vector<int> &predecessors(unsigned Block) const {
    return Preds[Block];
  }

  /// Blocks in reverse post order from the entry. Unreachable blocks are
  /// appended after the reachable ones (in id order) so every block appears
  /// exactly once.
  const std::vector<int> &reversePostOrder() const { return RPO; }

  /// True if \p Block is reachable from the entry block.
  bool isReachable(unsigned Block) const { return Reachable[Block]; }

private:
  std::vector<std::vector<int>> Succs;
  std::vector<std::vector<int>> Preds;
  std::vector<int> RPO;
  std::vector<bool> Reachable;
};

} // namespace gdp

#endif // GDP_ANALYSIS_CFG_H
