//===- partition/RHOP.h - Region-level operation partitioning ---*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second-pass computation partitioner: an implementation of
/// Region-based Hierarchical Operation Partitioning (RHOP, Chu et al.
/// PLDI'03) extended, as in the paper (§3.4), to honor data-object home
/// clusters: memory operations that are *locked* (pre-assigned to the home
/// cluster of the object they access) never move, and the refinement
/// optimizes the remaining operations around them.
///
/// Per region (basic block) it:
///  1. computes ASAP/ALAP slack and weights data edges inversely to slack
///     (low slack ⇒ critical ⇒ high weight);
///  2. coarsens operations by repeated heaviest-edge matching, grouping
///     each node at most once per stage and never fusing operations locked
///     to different clusters;
///  3. walks the coarsening levels back down, at each level greedily
///     moving groups across clusters when the schedule-length estimate
///     (see sched/Estimator.h) improves, with ties broken toward better
///     operation balance.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_PARTITION_RHOP_H
#define GDP_PARTITION_RHOP_H

#include "partition/DataPlacement.h"
#include "sched/ClusterAssignment.h"

#include <cstdint>

namespace gdp {

class MachineModel;
class ProfileData;

/// Tuning knobs for the RHOP pass.
struct RHOPOptions {
  /// Sweeps over each function's regions; a second sweep lets cross-block
  /// producer placements settle.
  unsigned NumFunctionPasses = 2;
  /// Refinement passes per coarsening level.
  unsigned MaxRefinePasses = 4;
  /// Coarsening stops at max(MinGroups, 2 × clusters) groups.
  unsigned MinGroups = 4;
  uint64_t Seed = 1;
};

/// Partitions every operation of \p P across the clusters of \p MM.
///
/// \param Locks optional per-function, per-operation pre-assignments
///        (memory operations pinned to object home clusters); pass null
///        for the unified-memory mode where every operation is free.
ClusterAssignment runRHOP(const Program &P, const ProfileData &Prof,
                          const MachineModel &MM, const LockMap *Locks,
                          const RHOPOptions &Opt = RHOPOptions());

} // namespace gdp

#endif // GDP_PARTITION_RHOP_H
