//===- bench/abl_balance.cpp - Ablation B: memory balance tolerance -------------===//
//
// Paper §4.3: "the object mappings at better performance, but worse memory
// balance, can be achieved by allowing for more imbalance of the resulting
// partition in METIS." This ablation sweeps GDP's memory balance tolerance
// and reports performance and the resulting data-size imbalance.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include <cstdio>

using namespace gdp;
using namespace gdp::bench;

int main(int argc, char **argv) {
  initBench(argc, argv);
  banner("Ablation B: GDP memory-balance tolerance sweep (5-cycle moves)",
         "Chu & Mahlke, CGO'06, §4.3 (balance/performance trade-off)");

  auto Suite = loadSuite();
  const double Tolerances[] = {0.02, 0.05, 0.125, 0.25, 0.5, 1.0};

  for (const SuiteEntry &E : Suite) {
    if (E.Name != "rawcaudio" && E.Name != "rawdaudio" && E.Name != "fft" &&
        E.Name != "pegwit")
      continue;
    uint64_t Unified = run(E, StrategyKind::Unified, 5).Cycles;
    TextTable Table({"tolerance", "perf vs unified", "byte imbalance"});
    for (double Tol : Tolerances) {
      PipelineOptions Opt;
      Opt.Strategy = StrategyKind::GDP;
      Opt.MoveLatency = 5;
      Opt.DataOpt.MemBalanceTolerance = Tol;
      // Model scarce local memories (capacity ≪ footprint) so the swept
      // tolerance stays the binding constraint; with the default machine
      // capacity the suite's small footprints relax it away entirely.
      Opt.DataOpt.MemCapacityBytes = 1;
      PipelineResult R = runStrategy(E.PP, Opt);
      Table.addRow({formatDouble(Tol, 3),
                    formatPercent(relativePerf(Unified, R.Cycles)),
                    formatDouble(R.Placement.sizeImbalance(*E.P, 2), 2)});
    }
    std::printf("--- %s ---\n%s\n", E.Name.c_str(), Table.render().c_str());
  }
  std::printf("Paper shape: loosening the balance constraint trades memory "
              "balance for\nperformance; benchmarks whose merged object "
              "classes resist balanced splits\n(pegwit) benefit the most "
              "from extra slack.\n");
  return 0;
}
