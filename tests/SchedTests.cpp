//===- tests/SchedTests.cpp - Scheduler/estimator unit tests -------------------===//

#include "analysis/CFG.h"
#include "analysis/DefUse.h"
#include "analysis/LoopInfo.h"
#include "analysis/OpIndex.h"
#include "ir/IRBuilder.h"
#include "machine/MachineModel.h"
#include "partition/Pipeline.h"
#include "profile/Interpreter.h"
#include "workloads/Workloads.h"
#include "sched/BlockDFG.h"
#include "sched/Estimator.h"
#include "sched/ListScheduler.h"
#include "sched/SchedulePrinter.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

using namespace gdp;

namespace {

/// Owning bundle for one function's scheduling inputs.
struct Region {
  std::unique_ptr<Program> P;
  Function *F = nullptr;
  std::unique_ptr<OpIndex> OI;
  std::unique_ptr<DefUse> DU;
  std::unique_ptr<CFG> Cfg;
  std::unique_ptr<LoopInfo> LI;
  std::unique_ptr<BlockDFG> DFG;

  /// Builds analyses and the DFG for block \p BlockId.
  void finalize(unsigned BlockId = 0) {
    OI = std::make_unique<OpIndex>(*F);
    DU = std::make_unique<DefUse>(*F);
    Cfg = std::make_unique<CFG>(*F);
    LI = std::make_unique<LoopInfo>(*F, *Cfg);
    DFG = std::make_unique<BlockDFG>(*F, F->getBlock(BlockId), *DU, *OI,
                                     LI.get());
  }

  std::vector<int> uniformAssign(int Cluster) const {
    return std::vector<int>(F->getNumOpIds(), Cluster);
  }
};

/// main() { a=1; b=2; c=a+b; d=a*b; store; ret } — simple parallel block.
Region makeSimpleBlock() {
  Region R;
  R.P = std::make_unique<Program>("t");
  R.F = R.P->makeFunction("main", 0);
  IRBuilder B(R.F);
  B.setInsertPoint(R.F->makeBlock("entry"));
  int A = B.movi(1);
  int C = B.movi(2);
  int Sum = B.add(A, C);
  int Prod = B.mul(A, C);
  B.ret(B.add(Sum, Prod));
  R.finalize();
  return R;
}

} // namespace

// --- MachineModel ---------------------------------------------------------------

TEST(MachineModelTest, DefaultPaperMachine) {
  MachineModel MM = MachineModel::makeDefault();
  EXPECT_EQ(MM.getNumClusters(), 2u);
  EXPECT_EQ(MM.getFUCount(0, FUKind::Integer), 2u);
  EXPECT_EQ(MM.getFUCount(0, FUKind::Float), 1u);
  EXPECT_EQ(MM.getFUCount(0, FUKind::Memory), 1u);
  EXPECT_EQ(MM.getFUCount(0, FUKind::Branch), 1u);
  EXPECT_EQ(MM.getMoveLatency(), 5u);
  EXPECT_EQ(MM.getMoveBandwidth(), 1u);
  EXPECT_TRUE(MM.hasPartitionedMemory());
}

TEST(MachineModelTest, Latencies) {
  MachineModel MM = MachineModel::makeDefault();
  EXPECT_EQ(MM.getLatency(Opcode::Add), 1u);
  EXPECT_EQ(MM.getLatency(Opcode::Load), 2u);
  EXPECT_EQ(MM.getLatency(Opcode::Mul), 3u);
  EXPECT_EQ(MM.getLatency(Opcode::ICMove), 5u);
  MM.setLatency(Opcode::Add, 4);
  EXPECT_EQ(MM.getLatency(Opcode::Add), 4u);
  MM.setMoveLatency(10);
  EXPECT_EQ(MM.getLatency(Opcode::ICMove), 10u);
}

// --- BlockDFG --------------------------------------------------------------------

TEST(BlockDFGTest, DataEdgesFollowDefUse) {
  Region R = makeSimpleBlock();
  // add and mul each consume both movis; final add consumes both.
  unsigned DataEdges = 0;
  for (const auto &E : R.DFG->edges())
    DataEdges += E.Kind == BlockDFG::EdgeKind::Data;
  EXPECT_EQ(DataEdges, 7u); // 4 into add/mul, 2 into the sum, 1 into ret.
}

TEST(BlockDFGTest, OrderEdgesIntoTerminator) {
  Region R = makeSimpleBlock();
  unsigned OrderEdges = 0;
  for (const auto &E : R.DFG->edges())
    if (E.Kind == BlockDFG::EdgeKind::Order) {
      EXPECT_EQ(E.To, R.DFG->size() - 1);
      ++OrderEdges;
    }
  EXPECT_EQ(OrderEdges, R.DFG->size() - 1); // Every non-terminator op.
}

TEST(BlockDFGTest, MemOrderingStoreThenLoad) {
  Region R;
  R.P = std::make_unique<Program>("t");
  int G = R.P->addGlobal("g", 4, 4);
  R.F = R.P->makeFunction("main", 0);
  IRBuilder B(R.F);
  B.setInsertPoint(R.F->makeBlock("entry"));
  int Base = B.addrOf(G);
  B.store(B.movi(1), Base, 0);
  int V = B.load(Base, 0);
  B.ret(V);
  // Annotate access sets by hand (points-to would do this normally).
  for (auto &Op : R.F->getEntryBlock().operations())
    if (opcodeIsMemoryAccess(Op->getOpcode()))
      Op->addAccessedObject(G);
  R.finalize();
  bool FoundMemEdge = false;
  for (const auto &E : R.DFG->edges())
    if (E.Kind == BlockDFG::EdgeKind::Mem &&
        R.DFG->getOp(E.From).getOpcode() == Opcode::Store &&
        R.DFG->getOp(E.To).getOpcode() == Opcode::Load)
      FoundMemEdge = true;
  EXPECT_TRUE(FoundMemEdge);
}

TEST(BlockDFGTest, IndependentLoadsUnordered) {
  Region R;
  R.P = std::make_unique<Program>("t");
  int G = R.P->addGlobal("g", 4, 4);
  R.F = R.P->makeFunction("main", 0);
  IRBuilder B(R.F);
  B.setInsertPoint(R.F->makeBlock("entry"));
  int Base = B.addrOf(G);
  int V1 = B.load(Base, 0);
  int V2 = B.load(Base, 1);
  B.ret(B.add(V1, V2));
  for (auto &Op : R.F->getEntryBlock().operations())
    if (opcodeIsMemoryAccess(Op->getOpcode()))
      Op->addAccessedObject(G);
  R.finalize();
  for (const auto &E : R.DFG->edges())
    EXPECT_NE(E.Kind, BlockDFG::EdgeKind::Mem);
}

TEST(BlockDFGTest, LiveInsAndHoistability) {
  Region R;
  R.P = std::make_unique<Program>("t");
  R.F = R.P->makeFunction("main", 0);
  IRBuilder B(R.F);
  B.setInsertPoint(R.F->makeBlock("entry"));
  int Inv = B.movi(42); // Defined outside the loop.
  auto L = B.beginCountedLoop(0, 10);
  B.add(Inv, L.IndVar); // Uses invariant + loop-varying value.
  B.endCountedLoop(L);
  B.ret();
  R.finalize(static_cast<unsigned>(L.Body->getId()));
  bool SawInvariant = false, SawVarying = false;
  for (const auto &LiveIn : R.DFG->liveIns()) {
    if (LiveIn.DefOpId < 0)
      continue;
    if (LiveIn.Hoistable)
      SawInvariant = true;
    else
      SawVarying = true;
  }
  EXPECT_TRUE(SawInvariant); // The movi 42 (and the loop bound).
  EXPECT_TRUE(SawVarying);   // The induction variable.
}

// --- List scheduler -----------------------------------------------------------------

TEST(SchedulerTest, SerialChainHonorsLatency) {
  Region R;
  R.P = std::make_unique<Program>("t");
  R.F = R.P->makeFunction("main", 0);
  IRBuilder B(R.F);
  B.setInsertPoint(R.F->makeBlock("entry"));
  int V = B.movi(1);
  V = B.mul(V, V); // Mul latency 3.
  V = B.mul(V, V);
  B.ret(V);
  R.finalize();
  MachineModel MM = MachineModel::makeDefault();
  BlockSchedule BS = scheduleBlock(*R.DFG, MM, R.uniformAssign(0));
  // movi(1) + mul(3) + mul(3) + terminator: completion ≥ 7.
  EXPECT_GE(BS.Length, 7u);
  EXPECT_EQ(BS.NumMoves, 0u);
}

TEST(SchedulerTest, IntegerUnitsLimitThroughput) {
  // 8 independent movi ops, 2 integer units on one cluster: ≥ 4 cycles.
  Region R;
  R.P = std::make_unique<Program>("t");
  R.F = R.P->makeFunction("main", 0);
  IRBuilder B(R.F);
  B.setInsertPoint(R.F->makeBlock("entry"));
  for (int I = 0; I != 8; ++I)
    B.movi(I);
  B.ret();
  R.finalize();
  MachineModel MM = MachineModel::makeDefault();
  BlockSchedule BS = scheduleBlock(*R.DFG, MM, R.uniformAssign(0));
  EXPECT_GE(BS.Length, 4u);
  // Splitting across both clusters roughly halves it.
  std::vector<int> Split = R.uniformAssign(0);
  for (unsigned I = 0; I < R.F->getNumOpIds(); I += 2)
    Split[I] = 1;
  BlockSchedule BS2 = scheduleBlock(*R.DFG, MM, Split);
  EXPECT_LT(BS2.Length, BS.Length);
}

TEST(SchedulerTest, CrossClusterEdgeCostsMoveLatency) {
  Region R = makeSimpleBlock();
  MachineModel MM = MachineModel::makeDefault(2, /*MoveLatency=*/5);
  BlockSchedule Local = scheduleBlock(*R.DFG, MM, R.uniformAssign(0));
  // Put the final add (and ret) on cluster 1: its operands must move.
  std::vector<int> Split = R.uniformAssign(0);
  const BasicBlock &BB = R.F->getEntryBlock();
  Split[static_cast<unsigned>(BB.getOp(BB.size() - 2).getId())] = 1;
  Split[static_cast<unsigned>(BB.getOp(BB.size() - 1).getId())] = 1;
  BlockSchedule Crossed = scheduleBlock(*R.DFG, MM, Split);
  EXPECT_GE(Crossed.Length, Local.Length + 4);
  EXPECT_GE(Crossed.NumMoves, 2u);
}

TEST(SchedulerTest, MoveSharedAcrossConsumers) {
  // One producer, three consumers on the other cluster: one move only.
  Region R;
  R.P = std::make_unique<Program>("t");
  R.F = R.P->makeFunction("main", 0);
  IRBuilder B(R.F);
  B.setInsertPoint(R.F->makeBlock("entry"));
  int V = B.movi(3);
  int A = B.add(V, V);
  int C = B.mul(V, V);
  int D = B.sub(V, V);
  B.ret(B.add(B.add(A, C), D));
  R.finalize();
  MachineModel MM = MachineModel::makeDefault();
  std::vector<int> Assign = R.uniformAssign(1);
  Assign[static_cast<unsigned>(
      R.F->getEntryBlock().getOp(0).getId())] = 0; // Producer on 0.
  BlockSchedule BS = scheduleBlock(*R.DFG, MM, Assign);
  EXPECT_EQ(BS.NumMoves, 1u);
}

TEST(SchedulerTest, BusBandwidthSerializesMoves) {
  // Many independent cross-cluster values with bandwidth 1: length grows
  // with the move count.
  Region R;
  R.P = std::make_unique<Program>("t");
  R.F = R.P->makeFunction("main", 0);
  IRBuilder B(R.F);
  B.setInsertPoint(R.F->makeBlock("entry"));
  std::vector<int> Vals;
  for (int I = 0; I != 6; ++I)
    Vals.push_back(B.movi(I));
  int Acc = B.movi(0);
  for (int V : Vals)
    Acc = B.add(Acc, V);
  B.ret(Acc);
  R.finalize();
  MachineModel MM = MachineModel::makeDefault(2, 1);
  // Producers on 0, consumers on 1.
  std::vector<int> Assign = R.uniformAssign(1);
  for (unsigned I = 0; I != 6; ++I)
    Assign[static_cast<unsigned>(
        R.F->getEntryBlock().getOp(I).getId())] = 0;
  BlockSchedule BS = scheduleBlock(*R.DFG, MM, Assign);
  EXPECT_EQ(BS.NumMoves, 6u);
  // 6 moves over a 1-wide bus: the last cannot arrive before cycle 6+1.
  EXPECT_GE(BS.Length, 7u);
}

TEST(SchedulerTest, ProgramCyclesWeightByFrequency) {
  auto P = std::make_unique<Program>("t");
  Function *F = P->makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  auto L = B.beginCountedLoop(0, 50);
  B.endCountedLoop(L);
  B.ret();
  Interpreter I(*P);
  ASSERT_TRUE(I.run().Ok);
  MachineModel MM = MachineModel::makeDefault();
  ClusterAssignment CA(*P);
  ProgramSchedule PS = scheduleProgram(*P, I.getProfile(), MM, CA);
  // Cycles at least (body length × 50).
  EXPECT_GE(PS.TotalCycles, 50u);
  EXPECT_EQ(PS.DynamicMoves, 0u); // Everything on one cluster.
}

TEST(SchedulerTest, HoistedInvariantMovesChargedPerEntry) {
  auto P = std::make_unique<Program>("t");
  Function *F = P->makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int Inv = B.movi(42);
  auto L = B.beginCountedLoop(0, 100);
  B.add(Inv, L.IndVar);
  B.endCountedLoop(L);
  B.ret();
  Interpreter I(*P);
  ASSERT_TRUE(I.run().Ok);
  MachineModel MM = MachineModel::makeDefault();
  // Put the invariant's producer on cluster 1, everything else on 0.
  ClusterAssignment CA(*P);
  CA.set(0, static_cast<unsigned>(F->getEntryBlock().getOp(0).getId()), 1);
  ProgramSchedule PS = scheduleProgram(*P, I.getProfile(), MM, CA);
  // The invariant transfer is paid once per loop entry (1), not per
  // iteration (100).
  EXPECT_LT(PS.DynamicMoves, 10u);
  EXPECT_GE(PS.DynamicMoves, 1u);
}

// --- Estimator -------------------------------------------------------------------

TEST(EstimatorTest, MatchesResourceBound) {
  // 9 independent integer ops on one cluster with 2 units: bound ≥ 5.
  Region R;
  R.P = std::make_unique<Program>("t");
  R.F = R.P->makeFunction("main", 0);
  IRBuilder B(R.F);
  B.setInsertPoint(R.F->makeBlock("entry"));
  for (int I = 0; I != 9; ++I)
    B.movi(I);
  B.ret();
  R.finalize();
  MachineModel MM = MachineModel::makeDefault();
  ScheduleEstimator Est(*R.DFG, MM);
  EXPECT_GE(Est.estimate(R.uniformAssign(0)), 5u);
}

TEST(EstimatorTest, CrossClusterAddsMoveLatencyToCP) {
  Region R = makeSimpleBlock();
  MachineModel MM = MachineModel::makeDefault(2, 5);
  ScheduleEstimator Est(*R.DFG, MM);
  unsigned Local = Est.estimate(R.uniformAssign(0));
  std::vector<int> Split = R.uniformAssign(0);
  const BasicBlock &BB = R.F->getEntryBlock();
  Split[static_cast<unsigned>(BB.getOp(BB.size() - 2).getId())] = 1;
  Split[static_cast<unsigned>(BB.getOp(BB.size() - 1).getId())] = 1;
  EXPECT_GE(Est.estimate(Split), Local + 4);
}

TEST(EstimatorTest, CountMovesDedups) {
  Region R;
  R.P = std::make_unique<Program>("t");
  R.F = R.P->makeFunction("main", 0);
  IRBuilder B(R.F);
  B.setInsertPoint(R.F->makeBlock("entry"));
  int V = B.movi(3);
  B.add(V, V);
  B.mul(V, V);
  B.ret();
  R.finalize();
  MachineModel MM = MachineModel::makeDefault();
  ScheduleEstimator Est(*R.DFG, MM);
  std::vector<int> Assign = R.uniformAssign(1);
  Assign[static_cast<unsigned>(
      R.F->getEntryBlock().getOp(0).getId())] = 0;
  EXPECT_EQ(Est.countMoves(Assign), 1u);
}

TEST(EstimatorTest, TracksSchedulerOrdering) {
  // The estimate must not exceed the real schedule by much, and both must
  // rank a bad split worse than the local assignment.
  Region R = makeSimpleBlock();
  MachineModel MM = MachineModel::makeDefault(2, 10);
  ScheduleEstimator Est(*R.DFG, MM);
  BlockSchedule Real = scheduleBlock(*R.DFG, MM, R.uniformAssign(0));
  unsigned E = Est.estimate(R.uniformAssign(0));
  EXPECT_LE(E, Real.Length + 2);
}

TEST(SchedulePrinterTest, RendersEveryIssuedOperation) {
  Region R = makeSimpleBlock();
  MachineModel MM = MachineModel::makeDefault();
  std::vector<int> Assign = R.uniformAssign(0);
  // Put the mul on cluster 1 so the dump shows both columns and a move.
  Assign[static_cast<unsigned>(
      R.F->getEntryBlock().getOp(3).getId())] = 1;
  BlockSchedule BS = scheduleBlock(*R.DFG, MM, Assign);
  std::string Dump = printBlockSchedule(*R.DFG, BS, MM, Assign);
  EXPECT_NE(Dump.find("cluster 0"), std::string::npos);
  EXPECT_NE(Dump.find("cluster 1"), std::string::npos);
  EXPECT_NE(Dump.find("mul"), std::string::npos);
  EXPECT_NE(Dump.find("intercluster moves"), std::string::npos);
  EXPECT_NE(Dump.find(formatStr("length %u cycles", BS.Length)),
            std::string::npos);
}

TEST(EstimatorTest, LowerBoundsRealScheduleAcrossSuite) {
  // Systematic property: on every block of every paper-suite workload,
  // under the GDP assignment, the estimate never exceeds the scheduled
  // length (it is a max of lower bounds; see Estimator.h) — at each of
  // the paper's three intercluster move latencies, whose cross-cluster
  // edge penalties the estimate and the scheduler must agree on.
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Suite == "extra")
      continue;
    auto P = W.Build();
    PreparedProgram PP = prepareProgram(*P);
    ASSERT_TRUE(PP.Ok) << W.Name;
    for (unsigned Lat : {1u, 5u, 10u}) {
      PipelineOptions Opt;
      Opt.Strategy = StrategyKind::GDP;
      Opt.MoveLatency = Lat;
      PipelineResult Res = runStrategy(PP, Opt);
      MachineModel MM = machineFor(Opt);
      for (const auto &F : P->functions()) {
        OpIndex OI(*F);
        DefUse DU(*F);
        CFG Cfg(*F);
        LoopInfo LI(*F, Cfg);
        for (unsigned Bk = 0; Bk != F->getNumBlocks(); ++Bk) {
          BlockDFG DFG(*F, F->getBlock(Bk), DU, OI, &LI);
          BlockSchedule BS = scheduleBlock(
              DFG, MM, Res.Assignment.func(static_cast<unsigned>(F->getId())));
          ScheduleEstimator Est(DFG, MM);
          EXPECT_LE(Est.estimate(Res.Assignment.func(
                        static_cast<unsigned>(F->getId()))),
                    BS.Length)
              << W.Name << " " << F->getName() << " bb" << Bk << " lat"
              << Lat;
        }
      }
    }
  }
}
