//===- serve/Coordinator.h - Sharded request routing ------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `gdpd --coordinator`: a Backend that owns one persistent client per
/// worker shard and routes each partition request to the shard that owns
/// its key (stable FNV-1a hash of the request key modulo the shard
/// count — the same spec always lands on the same shard, so each shard's
/// prepared-program cache stays hot for its slice of the key space,
/// RSCoordinator-style; see ROADMAP.md).
///
/// **Fault tolerance** (docs/SERVING.md, "Failure semantics"): each hash
/// slot maps to an ordered *replica chain* of `Replicas` shards — the
/// owner plus the next shards around the ring. A request tries the chain
/// in order and fails over on transport-shaped failures (unreachable,
/// dropped reply, Overloaded, ShuttingDown, InternalError); between
/// passes it backs off exponentially with deterministic jitter
/// (serve/Failover.h), never sleeping past the request's deadline.
/// Request-shaped failures (bad spec, EvalFailed, DeadlineExceeded) are
/// final and return immediately. Each shard sits behind a circuit
/// breaker: after `FailureThreshold` consecutive failures the shard is
/// skipped outright until a half-open probe — issued by the first
/// eligible request or the background health prober — succeeds. All of
/// it is surfaced as `serve.retry.*` / `serve.failover.*` /
/// `serve.breaker.*` counters and quantiles in the coordinator's stats
/// snapshot, and as a live `serve.breaker.open_shards` gauge on the
/// process MetricsHub.
///
/// Stats requests fan out: every shard returns its registry in the binary
/// wire format and the coordinator merges them exactly (LogHistogram
/// buckets add losslessly), then layers its own serving stats on top — a
/// cluster-wide p99 is computed from the union of every shard's samples,
/// not approximated from per-shard quantiles. Shutdown forwards to every
/// shard before the coordinator itself drains: one request tears down the
/// whole cluster.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_SERVE_COORDINATOR_H
#define GDP_SERVE_COORDINATOR_H

#include "serve/Client.h"
#include "serve/Failover.h"
#include "serve/Server.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gdp {
namespace serve {

/// Stable FNV-1a (64-bit) of a request key — the routing hash. Not
/// std::hash, whose value may differ between libraries/processes.
uint64_t routeHash(const std::string &Key);

/// Coordinator configuration (the fault-tolerance half of the gdpd flag
/// surface; defaults match a single-attempt pre-failover coordinator
/// closely enough that a 1-replica cluster behaves as before, just with
/// retries where a lone reconnect used to be).
struct CoordinatorOptions {
  /// Per-exchange I/O and connect timeout.
  int TimeoutMs = 30000;
  /// Replica-chain length per hash slot (clamped to the shard count).
  unsigned Replicas = 1;
  /// Retry/backoff policy across the replica chain.
  RetryPolicy Retry;
  /// Per-shard circuit-breaker tuning.
  BreakerOptions Breaker;
  /// Background health-probe period for open breakers, in milliseconds
  /// (0 disables the prober; recovery then rides on request probes).
  int HealthCheckMs = 1000;
};

/// Routes requests across worker shards over the gdpd protocol.
class CoordinatorBackend : public Backend {
public:
  /// \p Shards are the worker addresses; connections are lazy (first
  /// request to a shard connects it).
  CoordinatorBackend(std::vector<support::SockAddr> Shards,
                     CoordinatorOptions Opt);

  /// Compatibility constructor: defaults with a custom timeout.
  CoordinatorBackend(std::vector<support::SockAddr> Shards, int TimeoutMs);

  ~CoordinatorBackend() override;

  /// The shard index that owns \p Key (head of its replica chain).
  size_t shardFor(const std::string &Key) const {
    return static_cast<size_t>(routeHash(Key) % Shards.size());
  }

  /// The ordered replica chain for \p Key: the owning shard, then the
  /// next Replicas-1 shards around the ring.
  std::vector<size_t> replicasFor(const std::string &Key) const;

  PartitionOutcome partition(const PartitionRequest &Req,
                             support::CancelToken *Drain) override;
  bool collectStats(telemetry::StatsRegistry &Into,
                    std::vector<support::Diag> &Diags) override;
  void forwardShutdown() override;
  const char *role() const override { return "coordinator"; }

  size_t numShards() const { return Shards.size(); }
  unsigned replicas() const { return Opt.Replicas; }

  /// Live breaker state of shard \p I (tests, stats stamping).
  CircuitBreaker::State breakerState(size_t I) const {
    return Shards[I]->Breaker.state();
  }

  /// The coordinator's own serving registry (retry/failover/breaker
  /// counters) — merged into every stats snapshot; the chaos harness
  /// reads it directly.
  const telemetry::StatsRegistry &localStats() const { return Reg; }

private:
  /// One shard connection: a mutex-guarded persistent client (requests to
  /// the same shard serialize; different shards proceed in parallel) plus
  /// its circuit breaker (internally locked — the health prober and
  /// request path consult it without taking Mu).
  struct Shard {
    support::SockAddr Addr;
    std::mutex Mu;
    Client C;
    CircuitBreaker Breaker;

    explicit Shard(const BreakerOptions &B) : Breaker(B) {}
  };

  /// Runs \p Fn with the shard's client connected (reconnecting once if
  /// needed) under its lock. False if the shard is unreachable. Stats and
  /// shutdown fan-out use this; the partition path runs the full
  /// retry/failover policy instead.
  template <class Fn>
  bool withShard(size_t I, std::vector<support::Diag> *Diags, Fn &&F);

  /// One attempt against shard \p I: connect if needed, exchange, and
  /// classify. True when \p Out holds a final (non-retryable) response;
  /// \p GotResponse is set whenever a real response frame arrived (even a
  /// retryable one — the final answer propagates the last response seen).
  bool attemptShard(size_t I, const PartitionRequest &Req,
                    PartitionOutcome &Out, bool &GotResponse,
                    std::vector<support::Diag> *Diags);

  /// Milliseconds since construction (the breaker clock).
  double nowMs() const;

  /// Books a breaker transition into the registry and refreshes the
  /// open-shards gauge.
  void noteTransition(CircuitBreaker::Transition T, size_t I);

  /// Pings shards whose breaker is due a half-open probe.
  void healthLoop();

  std::vector<std::unique_ptr<Shard>> Shards;
  CoordinatorOptions Opt;
  telemetry::StatsRegistry Reg;
  std::chrono::steady_clock::time_point Epoch;

  std::thread Health;
  std::mutex HealthMu;
  std::condition_variable HealthCv;
  bool StopHealth = false;
};

} // namespace serve
} // namespace gdp

#endif // GDP_SERVE_COORDINATOR_H
