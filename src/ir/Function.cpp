//===- ir/Function.cpp - IR function --------------------------------------===//

#include "ir/Function.h"

using namespace gdp;

BasicBlock *Function::makeBlock(const std::string &BlockName) {
  auto BB = std::make_unique<BasicBlock>(static_cast<int>(Blocks.size()),
                                         BlockName);
  BB->setParent(this);
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

unsigned Function::getNumOps() const {
  unsigned Count = 0;
  for (const auto &BB : Blocks)
    Count += BB->size();
  return Count;
}
