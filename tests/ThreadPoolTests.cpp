//===- tests/ThreadPoolTests.cpp - Worker pool unit tests --------------------===//
//
// Covers gdp::support::ThreadPool's contract (docs/PARALLELISM.md):
// input-ordered results independent of execution order, exception
// propagation out of the bulk helpers (lowest failing index wins),
// zero-worker (inline) and one-worker edge cases, nested submission
// without deadlock, and the GDP_THREADS parser.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>

using namespace gdp::support;

namespace {

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ThreadPool Pool(2);
  auto Fut = Pool.submit([] { return 6 * 7; });
  EXPECT_EQ(Fut.get(), 42);
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnCallingThread) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.getNumWorkers(), 0u);
  std::thread::id Caller = std::this_thread::get_id();
  std::thread::id TaskThread;
  auto Fut = Pool.submit([&] { TaskThread = std::this_thread::get_id(); });
  // Inline mode executes at submission, so the future is already ready.
  EXPECT_EQ(Fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(TaskThread, Caller);
}

TEST(ThreadPool, ZeroWorkersPreservesSubmissionOrder) {
  ThreadPool Pool(0);
  std::vector<int> Order;
  for (int I = 0; I != 8; ++I)
    Pool.submit([&Order, I] { Order.push_back(I); });
  std::vector<int> Expect(8);
  std::iota(Expect.begin(), Expect.end(), 0);
  EXPECT_EQ(Order, Expect);
}

TEST(ThreadPool, ParallelMapResultsAreInputOrdered) {
  // Earlier items sleep longer, so execution *completes* in roughly
  // reverse order — the results must still come back in input order.
  ThreadPool Pool(4);
  std::vector<int> Items(16);
  std::iota(Items.begin(), Items.end(), 0);
  std::vector<int> Out = Pool.parallelMap(Items, [](const int &I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15 - I));
    return I * 10;
  });
  ASSERT_EQ(Out.size(), Items.size());
  for (int I = 0; I != 16; ++I)
    EXPECT_EQ(Out[static_cast<size_t>(I)], I * 10);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned Workers : {0u, 1u, 3u}) {
    ThreadPool Pool(Workers);
    std::vector<std::atomic<int>> Hits(64);
    Pool.parallelFor(0, Hits.size(),
                     [&](size_t I) { Hits[I].fetch_add(1); });
    for (size_t I = 0; I != Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << ", " << Workers
                                   << " workers";
  }
}

TEST(ThreadPool, ParallelMapPropagatesException) {
  ThreadPool Pool(2);
  std::vector<int> Items{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_THROW(Pool.parallelMap(Items,
                                [](const int &I) {
                                  if (I == 3)
                                    throw std::runtime_error("item 3");
                                  return I;
                                }),
               std::runtime_error);
}

TEST(ThreadPool, LowestFailingIndexWins) {
  // Several tasks throw; the surfaced exception must be the lowest
  // index's regardless of completion order (the determinism contract).
  for (unsigned Workers : {0u, 1u, 4u}) {
    ThreadPool Pool(Workers);
    std::vector<int> Items{0, 1, 2, 3, 4, 5, 6, 7};
    try {
      Pool.parallelMap(Items, [](const int &I) -> int {
        if (I % 2 == 1) { // 1, 3, 5, 7 all throw.
          std::this_thread::sleep_for(std::chrono::milliseconds(8 - I));
          throw std::runtime_error("item " + std::to_string(I));
        }
        return I;
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "item 1") << Workers << " workers";
    }
  }
}

TEST(ThreadPool, ExceptionDoesNotAbandonOtherTasks) {
  // Every task must still run to completion even when one throws early.
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  std::vector<int> Items(12);
  std::iota(Items.begin(), Items.end(), 0);
  EXPECT_THROW(Pool.parallelMap(Items,
                                [&](const int &I) {
                                  Ran.fetch_add(1);
                                  if (I == 0)
                                    throw std::runtime_error("first");
                                  return I;
                                }),
               std::runtime_error);
  EXPECT_EQ(Ran.load(), 12);
}

TEST(ThreadPool, OneWorkerCompletesEverything) {
  ThreadPool Pool(1);
  std::atomic<int> Sum{0};
  Pool.parallelFor(1, 101, [&](size_t I) {
    Sum.fetch_add(static_cast<int>(I));
  });
  EXPECT_EQ(Sum.load(), 5050);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  // A task that blocks on its own subtasks while every worker is busy:
  // the waiting thread must help drain the queue. One worker makes the
  // deadlock certain if helping were missing.
  ThreadPool Pool(1);
  std::vector<int> Outer{0, 1, 2, 3};
  std::vector<int> Totals = Pool.parallelMap(Outer, [&](const int &O) {
    std::vector<int> Inner{1, 2, 3};
    std::vector<int> Sub = Pool.parallelMap(
        Inner, [O](const int &I) { return O * 100 + I; });
    return Sub[0] + Sub[1] + Sub[2];
  });
  ASSERT_EQ(Totals.size(), 4u);
  for (int O = 0; O != 4; ++O)
    EXPECT_EQ(Totals[static_cast<size_t>(O)], O * 300 + 6);
}

TEST(ThreadPool, ManyTasksOnFewWorkers) {
  ThreadPool Pool(3);
  std::vector<int> Items(500);
  std::iota(Items.begin(), Items.end(), 0);
  std::vector<int> Out =
      Pool.parallelMap(Items, [](const int &I) { return I + 1; });
  for (int I = 0; I != 500; ++I)
    ASSERT_EQ(Out[static_cast<size_t>(I)], I + 1);
}

TEST(ThreadPool, EmptyRangeAndEmptyMapAreNoOps) {
  ThreadPool Pool(2);
  Pool.parallelFor(5, 5, [](size_t) { FAIL() << "must not run"; });
  std::vector<int> None;
  EXPECT_TRUE(Pool.parallelMap(None, [](const int &I) { return I; }).empty());
}

TEST(ThreadCountFromEnv, ParsesAndClamps) {
  const char *Old = std::getenv("GDP_THREADS");
  std::string Saved = Old ? Old : "";
  auto Restore = [&] {
    if (Old)
      setenv("GDP_THREADS", Saved.c_str(), 1);
    else
      unsetenv("GDP_THREADS");
  };
  unsetenv("GDP_THREADS");
  EXPECT_EQ(threadCountFromEnv(), 1u);
  setenv("GDP_THREADS", "8", 1);
  EXPECT_EQ(threadCountFromEnv(), 8u);
  setenv("GDP_THREADS", "0", 1);
  EXPECT_EQ(threadCountFromEnv(), 1u);
  setenv("GDP_THREADS", "banana", 1);
  EXPECT_EQ(threadCountFromEnv(), 1u);
  setenv("GDP_THREADS", "100000", 1);
  EXPECT_EQ(threadCountFromEnv(), 256u);
  Restore();
}

} // namespace
