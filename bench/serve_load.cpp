//===- bench/serve_load.cpp - gdpd closed-loop load generator ---------------===//
//
// Drives a gdpd cluster with concurrent closed-loop clients (each sends
// its next request the moment the previous response arrives) and reports
// throughput and latency quantiles as a machine-readable BENCH_serve.json
// (schema gdp-serve-v1, understood by bench_diff):
//
//   serve_load [--server=ADDR] [--shards=N] [--clients=N] [--requests=N]
//              [--threads-per-shard=N] [--replicas=N] [--out=FILE]
//              [--sock-dir=DIR] [--deterministic]
//              [--chaos=EVENTS --gdpd=PATH]
//
// Without --server the bench boots its own local cluster in-process: N
// shard servers plus one coordinator, all over unix sockets in
// --sock-dir (default /tmp), torn down cleanly at the end — the
// single-command serving benchmark, and the same topology the serve CI
// job builds from real gdpd processes. With --server it drives an
// already-running daemon instead and the cluster flags are ignored.
//
// The run has two phases. A serial *warmup* sends each distinct spec once
// so every shard's prepared-program cache is hot; the timed closed loop
// then measures the steady serving state. That makes the record's
// request/cache/status counts deterministic (first-touch cache misses
// race between concurrent clients otherwise), so with --deterministic —
// which zeroes the wall-clock fields (including the retry/failover
// latency fields, which are zero anyway in a chaos-free run) — the
// record is byte-stable.
//
// **Chaos mode** (--chaos, docs/SERVING.md): shards run as *real gdpd
// subprocesses* and a fault schedule kills and restarts them mid-load
// while the in-process coordinator (with --replicas replica chains,
// circuit breakers and deterministic retry) absorbs the outage. The
// grammar is comma-separated events with relative times:
//
//   --chaos=kill:1@2s,restart@4s        kill shard 1 at t=2s, restart it
//                                       (the last-killed shard) at t=4s
//   --chaos=kill:0@500ms,restart:0@1500ms
//
// The load loop runs until the last event plus a recovery tail, then a
// serial post-recovery probe asserts the cluster answers again. The
// record uses schema gdp-serve-chaos-v1 (availability: success rate,
// failover latency p99, requests lost) and the exit code is 0 only when
// every post-recovery request succeeds and the success rate is >= 99.9%.
//
// Exit code 1 if any timed request failed (shed, error, or transport) in
// normal mode, so CI's nominal-load run asserts zero sheds by
// construction.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Coordinator.h"
#include "serve/Server.h"
#include "support/Histogram.h"
#include "support/StatsRegistry.h"
#include "support/StrUtil.h"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace gdp;
using namespace gdp::serve;

namespace {

using Clock = std::chrono::steady_clock;

/// The request mix: cheap, cache-friendly specs whose keys spread across
/// shards (the coordinator routes by key hash). Deliberately small
/// programs — the bench measures the serving fabric at steady state
/// (warm prepared-program cache), not partitioning heft, and the per-
/// request partition pass is CPU-bound, so sub-millisecond specs are
/// what let a single box demonstrate six-figure req/min rates.
const char *const kSpecs[] = {
    "pegwit",    "gen:5:24",  "gen:11:24",
    "gen:17:30", "gen:23:30", "gen:5:40",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);

/// Requests cycle strategies the way a KV bench mixes reads and writes:
/// mostly the paper's GDP partitioner, with naive/unified baseline
/// requests interleaved (both are real service traffic — baselines are
/// what clients diff GDP results against).
const char *const kStrategies[] = {"gdp", "naive", "gdp", "unified"};
constexpr size_t kNumStrategies = sizeof(kStrategies) / sizeof(kStrategies[0]);

struct ClientStats {
  uint64_t Issued = 0;
  uint64_t Ok = 0;
  uint64_t CacheHits = 0;
  std::map<std::string, uint64_t> ByStatus;
  telemetry::ValueStats LatencyMs;
  telemetry::LogHistogram LatencyHist;
};

/// One in-process cluster member: a Server pumping on its own thread.
struct Member {
  std::unique_ptr<Service> Svc;
  std::unique_ptr<Backend> B;
  std::unique_ptr<Server> Srv;
  std::thread Pump;
};

/// One chaos-schedule event, times relative to load start.
struct ChaosEvent {
  bool Kill = false; ///< Kill vs. restart.
  int Shard = -1;    ///< Restart: -1 = the last-killed shard.
  double AtMs = 0;
};

/// One real gdpd worker subprocess (chaos mode).
struct ShardProc {
  pid_t Pid = -1;
  support::SockAddr Addr;
};

std::string jsonDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

/// Parses "kill:IDX@T" / "restart[:IDX]@T" with T = <num>s or <num>ms.
bool parseChaos(const std::string &Spec, unsigned Shards,
                std::vector<ChaosEvent> &Out, std::string &Err) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Part = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Part.empty())
      continue;
    ChaosEvent E;
    size_t At = Part.find('@');
    if (At == std::string::npos) {
      Err = "chaos event '" + Part + "' needs '@<time>'";
      return false;
    }
    std::string When = Part.substr(At + 1);
    std::string What = Part.substr(0, At);
    double Scale = 1000; // seconds by default
    if (When.size() > 2 && When.rfind("ms") == When.size() - 2) {
      Scale = 1;
      When = When.substr(0, When.size() - 2);
    } else if (!When.empty() && When.back() == 's') {
      When.pop_back();
    }
    char *End = nullptr;
    double T = std::strtod(When.c_str(), &End);
    if (When.empty() || *End != '\0' || T < 0) {
      Err = "bad chaos time in '" + Part + "'";
      return false;
    }
    E.AtMs = T * Scale;
    if (What.rfind("kill:", 0) == 0) {
      E.Kill = true;
      E.Shard = std::atoi(What.c_str() + 5);
    } else if (What == "restart") {
      E.Kill = false;
    } else if (What.rfind("restart:", 0) == 0) {
      E.Kill = false;
      E.Shard = std::atoi(What.c_str() + 8);
    } else {
      Err = "chaos event '" + Part + "' must be kill:IDX@T or "
            "restart[:IDX]@T";
      return false;
    }
    if (E.Kill && (E.Shard < 0 || E.Shard >= static_cast<int>(Shards))) {
      Err = "chaos shard index out of range in '" + Part + "'";
      return false;
    }
    Out.push_back(E);
  }
  if (Out.empty()) {
    Err = "empty chaos spec";
    return false;
  }
  return true;
}

/// fork/execs one real gdpd shard listening on \p Addr.
pid_t spawnShard(const std::string &Gdpd, const support::SockAddr &Addr,
                 unsigned Threads, size_t MaxInflight, bool Deterministic) {
  std::vector<std::string> Args = {
      Gdpd,
      "--listen=" + Addr.str(),
      formatStr("--threads=%u", Threads),
      formatStr("--max-inflight=%llu",
                static_cast<unsigned long long>(MaxInflight)),
  };
  if (Deterministic)
    Args.push_back("--deterministic");
  pid_t P = ::fork();
  if (P != 0)
    return P;
  std::vector<char *> Argv;
  for (auto &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);
  ::execv(Gdpd.c_str(), Argv.data());
  std::fprintf(stderr, "serve_load: cannot exec '%s'\n", Gdpd.c_str());
  ::_exit(127);
}

/// Polls connect+ping until the daemon answers (or the timeout passes).
bool waitReady(const support::SockAddr &Addr, int TimeoutMs) {
  auto End = Clock::now() + std::chrono::milliseconds(TimeoutMs);
  while (Clock::now() < End) {
    Client C;
    std::string Info;
    if (C.connect(Addr, 200, nullptr) && C.ping(Info, nullptr))
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

} // namespace

int main(int argc, char **argv) {
  std::string ServerAddr, OutPath = "BENCH_serve.json", SockDir = "/tmp";
  std::string ChaosSpec, GdpdPath;
  unsigned Shards = 4, Clients = 8, ThreadsPerShard = 2, Replicas = 1;
  uint64_t Requests = 2000;
  bool Deterministic = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--server=", 0) == 0)
      ServerAddr = Arg.substr(9);
    else if (Arg.rfind("--shards=", 0) == 0)
      Shards = static_cast<unsigned>(std::atoi(Arg.c_str() + 9));
    else if (Arg.rfind("--clients=", 0) == 0)
      Clients = static_cast<unsigned>(std::atoi(Arg.c_str() + 10));
    else if (Arg.rfind("--requests=", 0) == 0)
      Requests = std::strtoull(Arg.c_str() + 11, nullptr, 10);
    else if (Arg.rfind("--threads-per-shard=", 0) == 0)
      ThreadsPerShard = static_cast<unsigned>(std::atoi(Arg.c_str() + 20));
    else if (Arg.rfind("--replicas=", 0) == 0)
      Replicas = static_cast<unsigned>(std::atoi(Arg.c_str() + 11));
    else if (Arg.rfind("--out=", 0) == 0)
      OutPath = Arg.substr(6);
    else if (Arg.rfind("--sock-dir=", 0) == 0)
      SockDir = Arg.substr(11);
    else if (Arg.rfind("--chaos=", 0) == 0)
      ChaosSpec = Arg.substr(8);
    else if (Arg.rfind("--gdpd=", 0) == 0)
      GdpdPath = Arg.substr(7);
    else if (Arg == "--deterministic")
      Deterministic = true;
    else {
      std::fprintf(stderr, "serve_load: unknown flag '%s'\n", Arg.c_str());
      return 1;
    }
  }
  if (Shards == 0 || Clients == 0 || Requests == 0 || Replicas == 0) {
    std::fprintf(stderr, "serve_load: --shards/--clients/--requests/"
                         "--replicas must be positive\n");
    return 1;
  }
  if (Replicas > Shards) {
    std::fprintf(stderr, "serve_load: --replicas exceeds --shards\n");
    return 1;
  }
  const bool ChaosMode = !ChaosSpec.empty();
  std::vector<ChaosEvent> Events;
  if (ChaosMode) {
    std::string Err;
    if (!ServerAddr.empty()) {
      std::fprintf(stderr,
                   "serve_load: --chaos drives its own cluster; drop "
                   "--server\n");
      return 1;
    }
    if (GdpdPath.empty()) {
      std::fprintf(stderr, "serve_load: --chaos needs --gdpd=PATH (real "
                           "shard processes get killed and restarted)\n");
      return 1;
    }
    if (!parseChaos(ChaosSpec, Shards, Events, Err)) {
      std::fprintf(stderr, "serve_load: --chaos: %s\n", Err.c_str());
      return 1;
    }
  }

  // Chaos-tuned coordinator: fast failure detection, sub-second breaker
  // recovery. Nominal runs keep the defaults (whose counters all stay 0
  // without faults, preserving record byte-stability).
  CoordinatorOptions CoordOpt;
  CoordOpt.Replicas = Replicas;
  if (ChaosMode) {
    CoordOpt.TimeoutMs = 2000;
    CoordOpt.Breaker.OpenCooldownMs = 500;
    CoordOpt.HealthCheckMs = 100;
  }

  // Boot the cluster unless an external server was given. Chaos mode
  // spawns the shards as real gdpd subprocesses (they get SIGKILLed);
  // otherwise shards run in-process.
  std::vector<Member> Cluster;
  std::vector<ShardProc> Procs;
  CoordinatorBackend *Coord = nullptr;
  support::SockAddr Target;
  size_t ShardMaxInflight = Clients * 2 + 8; // Nominal load must never shed.
  auto boot = [&](const support::SockAddr &Listen, std::unique_ptr<Backend> B,
                  std::unique_ptr<Service> Svc, unsigned Threads) -> bool {
    Member M;
    M.Svc = std::move(Svc);
    M.B = std::move(B);
    ServerOptions SO;
    SO.Listen = Listen;
    SO.Threads = Threads;
    SO.MaxInflight = ShardMaxInflight;
    M.Srv = std::make_unique<Server>(SO, *M.Svc, *M.B);
    std::vector<support::Diag> Diags;
    if (!M.Srv->start(Diags)) {
      for (const auto &D : Diags)
        std::fprintf(stderr, "serve_load: %s\n", D.render().c_str());
      return false;
    }
    Server *S = M.Srv.get();
    M.Pump = std::thread([S] { S->run(); });
    Cluster.push_back(std::move(M));
    return true;
  };
  auto Teardown = [&] {
    for (auto &M : Cluster)
      M.Srv->requestStop();
    for (auto &M : Cluster)
      if (M.Pump.joinable())
        M.Pump.join();
    for (auto &P : Procs)
      if (P.Pid > 0) {
        ::kill(P.Pid, SIGTERM);
        int St = 0;
        ::waitpid(P.Pid, &St, 0);
        P.Pid = -1;
      }
  };

  if (ServerAddr.empty()) {
    std::vector<support::SockAddr> ShardAddrs;
    ServiceOptions SvcOpt;
    SvcOpt.Deterministic = Deterministic;
    for (unsigned I = 0; I != Shards; ++I) {
      support::SockAddr A;
      A.IsUnix = true;
      A.Path = formatStr("%s/gdp-serve-load-%d-s%u.sock", SockDir.c_str(),
                         static_cast<int>(::getpid()), I);
      if (ChaosMode) {
        ShardProc P;
        P.Addr = A;
        P.Pid = spawnShard(GdpdPath, A, ThreadsPerShard, ShardMaxInflight,
                           Deterministic);
        Procs.push_back(P);
        if (P.Pid < 0 || !waitReady(A, 10000)) {
          std::fprintf(stderr, "serve_load: shard %u (%s) never became "
                               "ready\n",
                       I, A.str().c_str());
          Teardown();
          return 1;
        }
      } else {
        auto Svc = std::make_unique<Service>(SvcOpt);
        auto B = std::make_unique<LocalBackend>(*Svc);
        if (!boot(A, std::move(B), std::move(Svc), ThreadsPerShard)) {
          Teardown();
          return 1;
        }
        A = Cluster.back().Srv->boundAddr();
      }
      ShardAddrs.push_back(A);
    }
    support::SockAddr CA;
    CA.IsUnix = true;
    CA.Path = formatStr("%s/gdp-serve-load-%d-coord.sock", SockDir.c_str(),
                        static_cast<int>(::getpid()));
    auto CoordSvc = std::make_unique<Service>(SvcOpt);
    auto CoordB = std::make_unique<CoordinatorBackend>(ShardAddrs, CoordOpt);
    Coord = CoordB.get();
    // Each persistent client connection pins one pool worker for the whole
    // run, and the Server's pool has Threads-1 workers: size for all
    // clients plus the warmup connection.
    if (!boot(CA, std::move(CoordB), std::move(CoordSvc),
              /*Threads=*/Clients + 2)) {
      Teardown();
      return 1;
    }
    Target = Cluster.back().Srv->boundAddr();
  } else {
    std::string Err;
    if (!support::SockAddr::parse(ServerAddr, Target, &Err)) {
      std::fprintf(stderr, "serve_load: %s\n", Err.c_str());
      return 1;
    }
  }

  auto makeRequest = [](size_t I) {
    PartitionRequest Req;
    Req.Spec = kSpecs[I % kNumSpecs];
    Req.Strategy = kStrategies[I % kNumStrategies];
    return Req;
  };

  // Warmup: one serial request per distinct spec primes every shard's
  // prepared-program cache, so the timed loop measures steady state.
  {
    Client C;
    std::vector<support::Diag> Diags;
    if (!C.connect(Target, 30000, &Diags)) {
      for (const auto &D : Diags)
        std::fprintf(stderr, "serve_load: %s\n", D.render().c_str());
      Teardown();
      return 1;
    }
    for (size_t I = 0; I != kNumSpecs; ++I) {
      std::string Body;
      Status S = C.partition(makeRequest(I), Body, nullptr);
      if (S != Status::Ok) {
        std::fprintf(stderr, "serve_load: warmup request '%s' answered %s\n",
                     kSpecs[I % kNumSpecs], statusName(S));
        Teardown();
        return 1;
      }
    }
  }

  // Chaos schedule bounds the load window: last event plus a recovery
  // tail long enough for a breaker cooldown, a health probe and slack.
  double LoadForMs = 0;
  if (ChaosMode) {
    for (const auto &E : Events)
      if (E.AtMs > LoadForMs)
        LoadForMs = E.AtMs;
    LoadForMs += CoordOpt.Breaker.OpenCooldownMs + 1500;
  }

  // The timed closed loop: a shared ticket counter hands out request
  // indices; each client drives its persistent connection flat out. In
  // chaos mode the loop is time-bound instead of ticket-bound, and a
  // scheduler thread executes the kill/restart events meanwhile.
  std::atomic<uint64_t> Next{0};
  std::atomic<int> RestartFailures{0};
  std::vector<ClientStats> PerClient(Clients);
  std::vector<std::thread> Workers;
  auto T0 = Clock::now();
  auto LoadEnd = T0 + std::chrono::milliseconds(
                          static_cast<int64_t>(LoadForMs));
  std::thread ChaosThread;
  if (ChaosMode)
    ChaosThread = std::thread([&] {
      int LastKilled = -1;
      for (const auto &E : Events) {
        std::this_thread::sleep_until(
            T0 + std::chrono::duration<double, std::milli>(E.AtMs));
        if (E.Kill) {
          ShardProc &P = Procs[static_cast<size_t>(E.Shard)];
          std::fprintf(stderr, "serve_load: chaos: SIGKILL shard %d "
                               "(pid %d)\n",
                       E.Shard, static_cast<int>(P.Pid));
          ::kill(P.Pid, SIGKILL);
          int St = 0;
          ::waitpid(P.Pid, &St, 0);
          P.Pid = -1;
          LastKilled = E.Shard;
        } else {
          int I = E.Shard >= 0 ? E.Shard : LastKilled;
          if (I < 0 || I >= static_cast<int>(Procs.size())) {
            std::fprintf(stderr, "serve_load: chaos: restart without a "
                                 "prior kill\n");
            RestartFailures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          ShardProc &P = Procs[static_cast<size_t>(I)];
          P.Pid = spawnShard(GdpdPath, P.Addr, ThreadsPerShard,
                             ShardMaxInflight, Deterministic);
          bool Ready = P.Pid > 0 && waitReady(P.Addr, 10000);
          std::fprintf(stderr, "serve_load: chaos: restarted shard %d "
                               "(pid %d, %s)\n",
                       I, static_cast<int>(P.Pid),
                       Ready ? "ready" : "NOT READY");
          if (!Ready)
            RestartFailures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  for (unsigned W = 0; W != Clients; ++W) {
    Workers.emplace_back([&, W] {
      ClientStats &St = PerClient[W];
      Client C;
      if (!C.connect(Target, 30000, nullptr)) {
        St.ByStatus["transport_error"] += Requests ? 1 : 0;
        return;
      }
      for (;;) {
        uint64_t I = Next.fetch_add(1, std::memory_order_relaxed);
        if (ChaosMode ? Clock::now() >= LoadEnd : I >= Requests)
          return;
        ++St.Issued;
        auto R0 = Clock::now();
        std::string Body;
        Status S = C.partition(makeRequest(static_cast<size_t>(I)), Body,
                               nullptr);
        double Ms =
            std::chrono::duration<double, std::milli>(Clock::now() - R0)
                .count();
        St.ByStatus[statusName(S)] += 1;
        if (S == Status::Ok) {
          ++St.Ok;
          if (Body.find("\"cache\": \"hit\"") != std::string::npos)
            ++St.CacheHits;
          St.LatencyMs.add(Ms);
          St.LatencyHist.add(Ms);
        } else if (!C.connected() && !C.connect(Target, 30000, nullptr))
          return; // Server gone; remaining tickets count as missing.
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  if (ChaosThread.joinable())
    ChaosThread.join();
  double WallSec = std::chrono::duration<double>(Clock::now() - T0).count();

  // Post-recovery probe (chaos): with every shard back and the breaker
  // reopened, the cluster must answer every spec again — zero residue.
  uint64_t PostReq = 0, PostOk = 0;
  if (ChaosMode) {
    Client C;
    if (C.connect(Target, 30000, nullptr))
      for (size_t I = 0; I != kNumSpecs; ++I) {
        ++PostReq;
        std::string Body;
        if (C.partition(makeRequest(I), Body, nullptr) == Status::Ok)
          ++PostOk;
      }
    else
      PostReq = kNumSpecs; // All missed: the coordinator itself is gone.
  }

  // Coordinator-side fault-tolerance counters, read in-process before
  // teardown (zero when driving an external server).
  uint64_t Retries = 0, Failovers = 0, TransportErrs = 0;
  uint64_t BrOpen = 0, BrClose = 0, BrReject = 0, BrHalfOpen = 0;
  uint64_t BrProbeOk = 0, BrProbeFail = 0;
  double FailoverP99 = 0, FailoverMean = 0;
  if (Coord) {
    const telemetry::StatsRegistry &R = Coord->localStats();
    Retries = R.getCounter("serve.retry.attempts");
    Failovers = R.getCounter("serve.failover.total");
    TransportErrs = R.getCounter("serve.retry.transport_errors");
    BrOpen = R.getCounter("serve.breaker.open");
    BrClose = R.getCounter("serve.breaker.close");
    BrReject = R.getCounter("serve.breaker.rejected");
    BrHalfOpen = R.getCounter("serve.breaker.half_open");
    BrProbeOk = R.getCounter("serve.breaker.probe.ok");
    BrProbeFail = R.getCounter("serve.breaker.probe.fail");
    FailoverP99 = R.quantile("serve.failover.latency_ms", 0.99);
    FailoverMean = R.getValue("serve.failover.latency_ms").mean();
  }
  Teardown();

  // Merge in fixed client order (determinism contract).
  ClientStats Total;
  for (const ClientStats &St : PerClient) {
    Total.Issued += St.Issued;
    Total.Ok += St.Ok;
    Total.CacheHits += St.CacheHits;
    for (const auto &[K, V] : St.ByStatus)
      Total.ByStatus[K] += V;
    Total.LatencyMs.merge(St.LatencyMs);
    Total.LatencyHist.merge(St.LatencyHist);
  }
  uint64_t Answered = 0;
  for (const auto &[K, V] : Total.ByStatus)
    Answered += V;

  double Rps = WallSec > 0 ? static_cast<double>(Total.Ok) / WallSec : 0;
  auto Z = [&](double V) { return Deterministic ? 0.0 : V; };
  auto U64 = [](uint64_t V) {
    return formatStr("%llu", static_cast<unsigned long long>(V));
  };

  std::string S;
  int Exit;
  if (ChaosMode) {
    uint64_t Lost = Total.Issued - Answered;
    uint64_t Failed = Total.Issued - Total.Ok;
    double SuccessRate =
        Total.Issued
            ? static_cast<double>(Total.Ok) / static_cast<double>(Total.Issued)
            : 0;
    S = "{\n  \"schema\": \"gdp-serve-chaos-v1\",\n";
    S += formatStr("  \"shards\": %u,\n  \"replicas\": %u,\n"
                   "  \"clients\": %u,\n",
                   Shards, Replicas, Clients);
    S += "  \"events\": [";
    for (size_t I = 0; I != Events.size(); ++I) {
      const ChaosEvent &E = Events[I];
      S += I ? ", " : "";
      S += formatStr("{\"kind\": \"%s\", \"shard\": %d, \"at_ms\": %s}",
                     E.Kill ? "kill" : "restart", E.Shard,
                     jsonDouble(E.AtMs).c_str());
    }
    S += "],\n";
    S += "  \"issued\": " + U64(Total.Issued) + ",\n";
    S += "  \"ok\": " + U64(Total.Ok) + ",\n";
    S += "  \"failed\": " + U64(Failed) + ",\n";
    S += "  \"lost\": " + U64(Lost) + ",\n";
    S += "  \"success_rate\": " + jsonDouble(SuccessRate) + ",\n";
    S += "  \"by_status\": {";
    bool First = true;
    for (const auto &[K, V] : Total.ByStatus) {
      S += First ? "" : ", ";
      S += formatStr("\"%s\": %llu", K.c_str(),
                     static_cast<unsigned long long>(V));
      First = false;
    }
    S += "},\n";
    S += "  \"retries\": " + U64(Retries) + ",\n";
    S += "  \"failovers\": " + U64(Failovers) + ",\n";
    S += "  \"transport_errors\": " + U64(TransportErrs) + ",\n";
    S += "  \"breaker\": {\"opened\": " + U64(BrOpen) +
         ", \"closed\": " + U64(BrClose) + ", \"rejected\": " + U64(BrReject) +
         ", \"half_open\": " + U64(BrHalfOpen) +
         ", \"probe_ok\": " + U64(BrProbeOk) +
         ", \"probe_fail\": " + U64(BrProbeFail) + "},\n";
    S += "  \"failover_latency_ms\": {\"mean\": " + jsonDouble(Z(FailoverMean)) +
         ", \"p99\": " + jsonDouble(Z(FailoverP99)) + "},\n";
    S += "  \"post_recovery\": {\"requests\": " + U64(PostReq) +
         ", \"ok\": " + U64(PostOk) + "},\n";
    S += "  \"wall_sec\": " + jsonDouble(Z(WallSec)) + ",\n";
    S += "  \"throughput_rps\": " + jsonDouble(Z(Rps)) + "\n}\n";
    bool Pass = PostOk == PostReq && SuccessRate >= 0.999 &&
                RestartFailures.load() == 0;
    Exit = Pass ? 0 : 1;
  } else {
    uint64_t Failed = Answered - Total.Ok + (Requests - Answered);
    S = "{\n  \"schema\": \"gdp-serve-v1\",\n";
    S += formatStr("  \"shards\": %u,\n  \"clients\": %u,\n", Shards,
                   Clients);
    S += formatStr("  \"replicas\": %u,\n", Replicas);
    S += formatStr("  \"requests\": %llu,\n",
                   static_cast<unsigned long long>(Requests));
    S += formatStr("  \"warmup_requests\": %llu,\n",
                   static_cast<unsigned long long>(kNumSpecs));
    S += formatStr("  \"ok\": %llu,\n",
                   static_cast<unsigned long long>(Total.Ok));
    S += formatStr("  \"failed\": %llu,\n",
                   static_cast<unsigned long long>(Failed));
    S += formatStr("  \"cache_hits\": %llu,\n",
                   static_cast<unsigned long long>(Total.CacheHits));
    S += "  \"by_status\": {";
    bool First = true;
    for (const auto &[K, V] : Total.ByStatus) {
      S += First ? "" : ", ";
      S += formatStr("\"%s\": %llu", K.c_str(),
                     static_cast<unsigned long long>(V));
      First = false;
    }
    S += "},\n";
    // Fault-tolerance counters: all zero in a healthy run (so the
    // deterministic record stays byte-stable); the latency quantile is
    // wall-clock and explicitly zeroed under --deterministic.
    S += "  \"retries\": " + U64(Retries) + ",\n";
    S += "  \"failovers\": " + U64(Failovers) + ",\n";
    S += "  \"failover_latency_p99_ms\": " + jsonDouble(Z(FailoverP99)) +
         ",\n";
    S += "  \"wall_sec\": " + jsonDouble(Z(WallSec)) + ",\n";
    S += "  \"throughput_rps\": " + jsonDouble(Z(Rps)) + ",\n";
    S += "  \"throughput_rpm\": " + jsonDouble(Z(Rps * 60)) + ",\n";
    S += "  \"latency_ms\": {";
    S += "\"mean\": " + jsonDouble(Z(Total.LatencyMs.mean())) + ", ";
    S += "\"p50\": " + jsonDouble(Z(Total.LatencyHist.quantile(0.5))) + ", ";
    S += "\"p90\": " + jsonDouble(Z(Total.LatencyHist.quantile(0.9))) + ", ";
    S += "\"p99\": " + jsonDouble(Z(Total.LatencyHist.quantile(0.99))) + ", ";
    S += "\"max\": " + jsonDouble(Z(Total.LatencyMs.Max)) + "}\n}\n";
    Exit = Failed == 0 ? 0 : 1;
  }

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "serve_load: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  Out << S;
  std::printf("%s", S.c_str());
  if (ChaosMode)
    std::printf("serve_load: chaos: %llu issued, %llu ok, %llu retries, "
                "%llu failovers, post-recovery %llu/%llu — %s\n",
                static_cast<unsigned long long>(Total.Issued),
                static_cast<unsigned long long>(Total.Ok),
                static_cast<unsigned long long>(Retries),
                static_cast<unsigned long long>(Failovers),
                static_cast<unsigned long long>(PostOk),
                static_cast<unsigned long long>(PostReq),
                Exit == 0 ? "PASS" : "FAIL");
  else
    std::printf("serve_load: %llu ok / %llu failed, %s req/s (%s req/min), "
                "p50 %.2fms p99 %.2fms\n",
                static_cast<unsigned long long>(Total.Ok),
                static_cast<unsigned long long>(Answered - Total.Ok +
                                                (Requests - Answered)),
                jsonDouble(Rps).c_str(), jsonDouble(Rps * 60).c_str(),
                Total.LatencyHist.quantile(0.5),
                Total.LatencyHist.quantile(0.99));
  return Exit;
}
