//===- partition/DotExport.h - GraphViz exports ------------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GraphViz (.dot) renderings of the structures the paper's figures draw:
/// the program-level data-flow graph with its access-pattern merge groups
/// (Figures 4/5) and a region DFG with a cluster assignment (Figure 6).
/// Pipe the output through `dot -Tsvg` to look at real partitions the way
/// the paper's illustrations do.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_PARTITION_DOTEXPORT_H
#define GDP_PARTITION_DOTEXPORT_H

#include <string>
#include <vector>

namespace gdp {

class AccessMerge;
class BlockDFG;
class DataPlacement;
class Program;
class ProgramGraph;

/// Renders the program-level graph: operations as nodes (memory operations
/// annotated with their objects), flow edges weighted, merge groups drawn
/// as clusters, and — when \p Placement is non-null — group colors by home
/// cluster. Large programs are readable up to a few hundred operations.
std::string exportProgramGraphDot(const Program &P, const ProgramGraph &PG,
                                  const AccessMerge &Merge,
                                  const DataPlacement *Placement);

/// Renders one region DFG with per-cluster node colors (the paper's
/// Figure 6 view). \p ClusterOfOp is indexed by operation id.
std::string exportRegionDot(const BlockDFG &DFG,
                            const std::vector<int> &ClusterOfOp);

} // namespace gdp

#endif // GDP_PARTITION_DOTEXPORT_H
