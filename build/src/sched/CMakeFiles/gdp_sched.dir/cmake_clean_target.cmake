file(REMOVE_RECURSE
  "libgdp_sched.a"
)
