//===- ir/IRBuilder.h - Convenience IR construction API ---------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A builder that appends operations to a basic block. This is the public
/// API the workload suite (and library users) construct programs with.
///
/// Most emitters allocate a fresh destination register and return it; the
/// `*To` variants write an existing register, which is how loop-carried
/// values are expressed in this non-SSA IR.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_IR_IRBUILDER_H
#define GDP_IR_IRBUILDER_H

#include "ir/Program.h"

namespace gdp {

/// Appends operations to a current insertion block.
class IRBuilder {
public:
  explicit IRBuilder(Function *F) : F(F) {}

  Function *getFunction() const { return F; }
  BasicBlock *getInsertBlock() const { return BB; }
  void setInsertPoint(BasicBlock *Block) { BB = Block; }

  /// Creates a new block in the current function (does not move the
  /// insertion point).
  BasicBlock *makeBlock(const std::string &Name) { return F->makeBlock(Name); }

  /// Allocates a fresh virtual register.
  int newReg() { return F->makeVReg(); }

  // --- Generic emitters -------------------------------------------------

  /// Emits a binary operation into a fresh register.
  int emitBinary(Opcode Op, int A, int B);
  /// Emits a binary operation into register \p Dest.
  void emitBinaryTo(int Dest, Opcode Op, int A, int B);
  /// Emits a unary operation into a fresh register.
  int emitUnary(Opcode Op, int A);
  void emitUnaryTo(int Dest, Opcode Op, int A);

  // --- Integer arithmetic ------------------------------------------------

  int add(int A, int B) { return emitBinary(Opcode::Add, A, B); }
  int sub(int A, int B) { return emitBinary(Opcode::Sub, A, B); }
  int mul(int A, int B) { return emitBinary(Opcode::Mul, A, B); }
  int div(int A, int B) { return emitBinary(Opcode::Div, A, B); }
  int rem(int A, int B) { return emitBinary(Opcode::Rem, A, B); }
  int and_(int A, int B) { return emitBinary(Opcode::And, A, B); }
  int or_(int A, int B) { return emitBinary(Opcode::Or, A, B); }
  int xor_(int A, int B) { return emitBinary(Opcode::Xor, A, B); }
  int shl(int A, int B) { return emitBinary(Opcode::Shl, A, B); }
  int ashr(int A, int B) { return emitBinary(Opcode::AShr, A, B); }
  int lshr(int A, int B) { return emitBinary(Opcode::LShr, A, B); }
  int cmpEQ(int A, int B) { return emitBinary(Opcode::CmpEQ, A, B); }
  int cmpNE(int A, int B) { return emitBinary(Opcode::CmpNE, A, B); }
  int cmpLT(int A, int B) { return emitBinary(Opcode::CmpLT, A, B); }
  int cmpLE(int A, int B) { return emitBinary(Opcode::CmpLE, A, B); }
  int cmpGT(int A, int B) { return emitBinary(Opcode::CmpGT, A, B); }
  int cmpGE(int A, int B) { return emitBinary(Opcode::CmpGE, A, B); }
  int min(int A, int B) { return emitBinary(Opcode::Min, A, B); }
  int max(int A, int B) { return emitBinary(Opcode::Max, A, B); }
  int abs(int A) { return emitUnary(Opcode::Abs, A); }
  /// dest = Cond ? A : B
  int select(int Cond, int A, int B);

  // --- Floating point ----------------------------------------------------

  int fadd(int A, int B) { return emitBinary(Opcode::FAdd, A, B); }
  int fsub(int A, int B) { return emitBinary(Opcode::FSub, A, B); }
  int fmul(int A, int B) { return emitBinary(Opcode::FMul, A, B); }
  int fdiv(int A, int B) { return emitBinary(Opcode::FDiv, A, B); }
  int fneg(int A) { return emitUnary(Opcode::FNeg, A); }
  int fabs(int A) { return emitUnary(Opcode::FAbs, A); }
  int fmin(int A, int B) { return emitBinary(Opcode::FMin, A, B); }
  int fmax(int A, int B) { return emitBinary(Opcode::FMax, A, B); }
  int fcmpEQ(int A, int B) { return emitBinary(Opcode::FCmpEQ, A, B); }
  int fcmpLT(int A, int B) { return emitBinary(Opcode::FCmpLT, A, B); }
  int fcmpLE(int A, int B) { return emitBinary(Opcode::FCmpLE, A, B); }
  int itof(int A) { return emitUnary(Opcode::ItoF, A); }
  int ftoi(int A) { return emitUnary(Opcode::FtoI, A); }

  // --- Moves and constants ----------------------------------------------

  /// dest = integer constant \p V.
  int movi(int64_t V);
  void moviTo(int Dest, int64_t V);
  /// dest = float constant \p V.
  int movf(double V);
  void movfTo(int Dest, double V);
  int mov(int Src) { return emitUnary(Opcode::Mov, Src); }
  void movTo(int Dest, int Src) { emitUnaryTo(Dest, Opcode::Mov, Src); }

  // --- Memory --------------------------------------------------------

  /// dest = base address of data object \p ObjectId.
  int addrOf(int ObjectId);
  /// dest = mem[Addr + Offset] (element-granular offset).
  int load(int Addr, int64_t Offset = 0);
  void loadTo(int Dest, int Addr, int64_t Offset = 0);
  /// mem[Addr + Offset] = Value.
  void store(int Value, int Addr, int64_t Offset = 0);
  /// dest = fresh heap allocation of mem[SizeReg] elements, attributed to
  /// malloc call site \p SiteId (must be a HeapSite data object).
  int mallocOp(int SizeReg, int SiteId);

  // --- Control flow --------------------------------------------------

  void br(BasicBlock *Target);
  void brCond(int Cond, BasicBlock *Taken, BasicBlock *NotTaken);
  /// dest = call Callee(Args...); pass WantResult=false for void calls
  /// (returns -1 then).
  int call(const Function *Callee, const std::vector<int> &Args,
           bool WantResult = true);
  void ret();
  void ret(int Value);

  // --- Structured helpers ------------------------------------------------

  /// Emits a counted loop skeleton: allocates the induction register,
  /// initializes it to \p Begin in the current block, branches into a new
  /// header block. The caller fills the body via the returned handles and
  /// then calls endCountedLoop().
  struct LoopHandle {
    int IndVar;        ///< Induction register, valid in the body.
    BasicBlock *Body;  ///< Loop body block (insertion point on return).
    BasicBlock *Exit;  ///< Block control reaches after the loop.
    BasicBlock *Latch; ///< Internal: header/latch combined block.
    int64_t Step;      ///< Internal: increment.
    int LimitReg;      ///< Internal: loop bound register.
  };

  /// Starts `for (i = Begin; i < End; i += Step)` (or `i > End` for
  /// negative steps). On return the insertion point is the loop body.
  LoopHandle beginCountedLoop(int64_t Begin, int64_t End, int64_t Step = 1);
  /// Same, with the bound in register \p EndReg.
  LoopHandle beginCountedLoopReg(int64_t Begin, int EndReg,
                                 int64_t Step = 1);
  /// Ends the loop started by \p L: increments the induction variable,
  /// branches back, and moves the insertion point to the exit block.
  void endCountedLoop(LoopHandle &L);

private:
  Operation *emit(Opcode Op);

  Function *F;
  BasicBlock *BB = nullptr;
};

} // namespace gdp

#endif // GDP_IR_IRBUILDER_H
