# Empty dependencies file for mediabench_report.
# This may be replaced when dependencies are built.
