# Empty dependencies file for gdp_profile.
# This may be replaced when dependencies are built.
