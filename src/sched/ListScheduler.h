//===- sched/ListScheduler.h - Cluster-aware VLIW scheduling ----*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cluster-aware cycle scheduler for one region (basic block) and the
/// program-level cycle accounting built on it. Given a per-operation
/// cluster assignment it:
///
///  * issues each operation on a free function unit of its kind on its
///    cluster, respecting data/memory/order dependences;
///  * materializes an intercluster move for every data edge whose
///    endpoints live on different clusters (one move per (producer,
///    destination cluster), shared by all consumers) and for every cross-
///    cluster live-in value, modeling the interconnect's bandwidth
///    (issue slots per cycle) and latency;
///  * reports the block's schedule length and move count.
///
/// Program cycles are Σ_blocks length(block) × profile-frequency(block) —
/// the standard static evaluation used by the clustering literature.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_SCHED_LISTSCHEDULER_H
#define GDP_SCHED_LISTSCHEDULER_H

#include "sched/BlockDFG.h"
#include "sched/ClusterAssignment.h"

#include <cstdint>
#include <vector>

namespace gdp {

class MachineModel;
class ProfileData;

/// Cycle-level schedule of one block.
struct BlockSchedule {
  unsigned Length = 0;   ///< Completion cycle of the whole block.
  unsigned NumMoves = 0; ///< Intercluster moves per block execution.
  unsigned HoistedMoves = 0; ///< Loop-invariant transfers hoisted out of
                             ///< the block (paid per loop entry).
  unsigned ReadyPeak = 0; ///< Largest ready-list population seen.
  std::vector<unsigned> IssueCycle; ///< Per local operation index.
  /// Bus issue cycle of every in-block intercluster move (live-in refills
  /// and cross-cluster data edges; hoisted transfers excluded). One entry
  /// per NumMoves, in reservation order. The trace-driven simulator
  /// replays these slots against the dynamic bus state.
  std::vector<unsigned> MoveIssue;
};

/// Schedules one block. \p ClusterOfOp is indexed by *operation id* (the
/// enclosing function's table from a ClusterAssignment).
BlockSchedule scheduleBlock(const BlockDFG &DFG, const MachineModel &MM,
                            const std::vector<int> &ClusterOfOp);

/// Program-level cycle accounting.
struct ProgramSchedule {
  uint64_t TotalCycles = 0;  ///< Σ block length × block frequency.
  uint64_t DynamicMoves = 0; ///< Σ block moves × block frequency.
  uint64_t StaticMoves = 0;  ///< Σ block moves (unweighted).
  /// Per-function, per-block schedule lengths.
  std::vector<std::vector<unsigned>> BlockLengths;
};

/// Schedules every block of every function and folds in the profile.
ProgramSchedule scheduleProgram(const Program &P, const ProfileData &Prof,
                                const MachineModel &MM,
                                const ClusterAssignment &CA);

} // namespace gdp

#endif // GDP_SCHED_LISTSCHEDULER_H
