//===- support/Telemetry.h - Telemetry facade -------------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `gdp::telemetry` subsystem's entry point. A TelemetrySession bundles
/// a StatsRegistry (counters, value histograms, quantile histograms, phase
/// timers) with a TraceRecorder (Chrome trace_event log). Instrumented
/// code talks to the *installed* session through free helpers that compile
/// to a single branch-on-null when no session is attached:
///
///   telemetry::counter("rhop.moves", N);          // no-op when disabled
///   telemetry::value("sched.block_length", Len);
///   { telemetry::Span S("pipeline.rhop");         // timer + trace span
///     S.attr("strategy", "gdp").attr("clusters", 2);
///     ... }
///
/// Spans form a per-thread tree: a Span's parent is whatever span was live
/// on the thread when it was constructed. Across ThreadPool tasks the tree
/// is stitched at merge time — the pool captures the submitting thread's
/// span context, task bodies read it back with `inheritedContext()`, and a
/// shard session stamped with `adoptTaskContext()` re-parents its root
/// spans (and tags every event with the task index) when it merges into
/// the parent session. Merging in input order keeps the whole structure
/// deterministic at any thread count.
///
/// Sessions are installed/uninstalled with ScopedSession (RAII) — the CLI
/// and bench harness attach one only when --stats/--trace/--json was
/// given, so the instrumented hot paths cost nothing by default: no
/// allocation, no locking, no clock reads.
///
/// The disabled fast path is allocation-free by construction: every helper
/// takes `const char *` names and checks the global pointer before touching
/// anything that could allocate; Span::attr returns before formatting.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_SUPPORT_TELEMETRY_H
#define GDP_SUPPORT_TELEMETRY_H

#include "support/StatsRegistry.h"
#include "support/TraceEvent.h"

#include <cstdint>

namespace gdp {
namespace telemetry {

/// The span identity a task inherits from its submitting thread. Ids live
/// in the id space of the session that was installed where the context was
/// captured — i.e. the session the task's shard will merge into.
struct SpanContext {
  uint64_t SpanId = 0;
};

/// One observability session: statistics plus a trace log.
class TelemetrySession {
public:
  StatsRegistry &stats() { return Stats; }
  const StatsRegistry &stats() const { return Stats; }
  TraceRecorder &trace() { return Trace; }
  const TraceRecorder &trace() const { return Trace; }

  /// Stamps this session as the shard of ThreadPool task \p TaskIndex,
  /// spawned under \p Parent (in the merge target's id space). When the
  /// shard later merges, its root spans re-parent onto \p Parent and every
  /// event is tagged with the task index.
  void adoptTaskContext(SpanContext Parent, int32_t TaskIndex) {
    MergeParentSpan = Parent.SpanId;
    MergeTaskIndex = TaskIndex;
  }

  /// Folds a per-task shard session into this one: counters, histograms
  /// and timers add up exactly; trace events append with rebased
  /// timestamps, renumbered span ids, and the shard's adopted parent/task
  /// attribution. Callers merge shards in input order so the result is
  /// identical at any thread count.
  void mergeFrom(const TelemetrySession &O) {
    Stats.mergeFrom(O.stats());
    Trace.mergeFrom(O.trace(), O.MergeParentSpan, O.MergeTaskIndex);
  }

private:
  StatsRegistry Stats;
  TraceRecorder Trace;
  uint64_t MergeParentSpan = 0;
  int32_t MergeTaskIndex = -1;
};

namespace detail {
/// The installed session (null = telemetry disabled). Thread-local: each
/// thread sees only the session it installed itself, so concurrent
/// pipeline evaluations record into disjoint shard sessions with no
/// locking or cross-thread visibility at all. The pool-based callers
/// install one shard per task and merge them at join time, in input
/// order, which keeps counters exact and deterministic (see
/// docs/PARALLELISM.md).
extern thread_local TelemetrySession *Current;

/// Innermost live span on this thread (0 = none), in the id space of the
/// installed session. Maintained by Span; saved/zeroed/restored by
/// ScopedSession so a shard session never parents onto a foreign id.
extern thread_local uint64_t CurrentSpanId;

/// The span context captured when the currently-executing ThreadPool task
/// was submitted (0 = none). Set by the pool around task bodies.
extern thread_local uint64_t InheritedSpanId;
} // namespace detail

/// The session installed on this thread, or null when telemetry is off.
inline TelemetrySession *session() { return detail::Current; }

/// True when a session is attached on this thread.
inline bool enabled() { return session() != nullptr; }

/// The innermost live span on this thread (SpanId 0 when none).
inline SpanContext currentContext() { return {detail::CurrentSpanId}; }

/// The span context the running ThreadPool task inherited from its
/// submitter (SpanId 0 when none). Task bodies pass this (plus their task
/// index) to TelemetrySession::adoptTaskContext on their shard session.
inline SpanContext inheritedContext() { return {detail::InheritedSpanId}; }

/// RAII guard the ThreadPool wraps around task bodies to expose the
/// submitting thread's span context to the task.
class InheritedContextScope {
public:
  explicit InheritedContextScope(SpanContext C)
      : Prev(detail::InheritedSpanId) {
    detail::InheritedSpanId = C.SpanId;
  }
  ~InheritedContextScope() { detail::InheritedSpanId = Prev; }
  InheritedContextScope(const InheritedContextScope &) = delete;
  InheritedContextScope &operator=(const InheritedContextScope &) = delete;

private:
  uint64_t Prev;
};

/// Installs \p S on the calling thread (pass null to disable). Returns the
/// previous session so scopes can nest.
TelemetrySession *install(TelemetrySession *S);

/// RAII installation of a session for one region of code. Also parks the
/// thread's span stack: spans opened under the new session are roots in
/// its id space, and the previous stack is restored on exit.
class ScopedSession {
public:
  explicit ScopedSession(TelemetrySession &S)
      : Prev(install(&S)), PrevSpan(detail::CurrentSpanId) {
    detail::CurrentSpanId = 0;
  }
  ~ScopedSession() {
    detail::CurrentSpanId = PrevSpan;
    install(Prev);
  }
  ScopedSession(const ScopedSession &) = delete;
  ScopedSession &operator=(const ScopedSession &) = delete;

private:
  TelemetrySession *Prev;
  uint64_t PrevSpan;
};

/// Adds \p Delta to counter \p Name in the installed session, if any.
inline void counter(const char *Name, uint64_t Delta = 1) {
  if (TelemetrySession *S = session())
    S->stats().addCounter(Name, Delta);
}

/// Records one histogram sample in the installed session, if any.
inline void value(const char *Name, double V) {
  if (TelemetrySession *S = session())
    S->stats().recordValue(Name, V);
}

/// Drops an instant marker into the trace of the installed session,
/// parented to the innermost live span.
inline void instant(const char *Name, const char *Category = "mark") {
  if (TelemetrySession *S = session())
    S->trace().addInstant(Name, Category, detail::CurrentSpanId);
}

/// RAII span: a phase timer with identity. On destruction adds the elapsed
/// seconds to the timer named \p Name and appends a complete trace event
/// carrying the span id, the parent span id (whatever span was live on
/// this thread at construction) and any attributes attached with attr().
/// Inert (no clock read, no allocation) when no session is installed at
/// construction.
class Span {
public:
  explicit Span(const char *Name, const char *Category = "phase")
      : S(session()), Name(Name), Category(Category) {
    if (!S)
      return;
    StartUs = S->trace().nowUs();
    Id = S->trace().allocSpanId();
    Parent = detail::CurrentSpanId;
    detail::CurrentSpanId = Id;
  }

  /// Attaches a typed attribute (chainable). No-ops when disabled.
  Span &attr(const char *Key, const char *V);
  Span &attr(const char *Key, const std::string &V);
  Span &attr(const char *Key, uint64_t V);
  Span &attr(const char *Key, int64_t V);
  Span &attr(const char *Key, double V);
  Span &attr(const char *Key, int V) {
    return attr(Key, static_cast<int64_t>(V));
  }
  Span &attr(const char *Key, unsigned V) {
    return attr(Key, static_cast<uint64_t>(V));
  }

  /// This span's id (0 when telemetry is disabled).
  uint64_t id() const { return Id; }

  /// Context handle for propagating parentage to ThreadPool tasks.
  SpanContext context() const { return {Id}; }

  /// Ends the span now instead of at scope exit (idempotent).
  void stop() {
    if (!S)
      return;
    uint64_t EndUs = S->trace().nowUs();
    uint64_t Dur = EndUs >= StartUs ? EndUs - StartUs : 0;
    S->trace().addSpan(Name, Category, StartUs, Dur, Id, Parent,
                       std::move(Args));
    S->stats().addTime(Name, static_cast<double>(Dur) * 1e-6);
    detail::CurrentSpanId = Parent;
    S = nullptr;
  }

  ~Span() { stop(); }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  TelemetrySession *S;
  const char *Name;
  const char *Category;
  uint64_t StartUs = 0;
  uint64_t Id = 0;
  uint64_t Parent = 0;
  std::vector<TraceArg> Args;
};

/// Historical name for a plain span: every phase timer is a span now, so
/// nested timers show their parentage in the trace.
using ScopedTimer = Span;

} // namespace telemetry
} // namespace gdp

#endif // GDP_SUPPORT_TELEMETRY_H
