//===- tests/GraphTests.cpp - Graph partitioner unit tests --------------------===//

#include "graph/MultilevelPartitioner.h"
#include "graph/PartitionGraph.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace gdp;

// --- PartitionGraph accounting ------------------------------------------------

TEST(PartitionGraphTest, NodeWeightsAndTotals) {
  PartitionGraph G(2);
  G.addNode({10, 1});
  G.addNode({20, 2});
  auto Totals = G.totalWeights();
  EXPECT_EQ(Totals[0], 30u);
  EXPECT_EQ(Totals[1], 3u);
}

TEST(PartitionGraphTest, ParallelEdgesAccumulate) {
  PartitionGraph G(1);
  unsigned A = G.addNode({1}), B = G.addNode({1});
  G.addEdge(A, B, 3);
  G.addEdge(B, A, 4);
  EXPECT_EQ(G.edgeWeight(A, B), 7u);
  EXPECT_EQ(G.totalEdgeWeight(), 7u);
}

TEST(PartitionGraphTest, SelfAndZeroEdgesIgnored) {
  PartitionGraph G(1);
  unsigned A = G.addNode({1}), B = G.addNode({1});
  G.addEdge(A, A, 5);
  G.addEdge(A, B, 0);
  EXPECT_TRUE(G.neighbors(A).empty());
  EXPECT_EQ(G.totalEdgeWeight(), 0u);
}

TEST(PartitionGraphTest, CutWeight) {
  PartitionGraph G(1);
  unsigned A = G.addNode({1}), B = G.addNode({1}), C = G.addNode({1});
  G.addEdge(A, B, 5);
  G.addEdge(B, C, 7);
  EXPECT_EQ(G.cutWeight({0, 0, 1}), 7u);
  EXPECT_EQ(G.cutWeight({0, 1, 0}), 12u);
  EXPECT_EQ(G.cutWeight({0, 0, 0}), 0u);
}

// --- Multilevel partitioner -------------------------------------------------

namespace {

/// Two 4-cliques joined by a single light edge: the partitioner must cut
/// the bridge.
PartitionGraph makeTwoCliques() {
  PartitionGraph G(1);
  for (int I = 0; I != 8; ++I)
    G.addNode({1});
  for (unsigned I = 0; I != 4; ++I)
    for (unsigned J = I + 1; J != 4; ++J) {
      G.addEdge(I, J, 10);
      G.addEdge(I + 4, J + 4, 10);
    }
  G.addEdge(3, 4, 1); // Bridge.
  return G;
}

} // namespace

TEST(PartitionerTest, CutsTheBridge) {
  PartitionGraph G = makeTwoCliques();
  GraphPartitionOptions Opt;
  Opt.NumParts = 2;
  GraphPartition R = partitionGraph(G, Opt);
  EXPECT_EQ(R.CutWeight, 1u);
  // Each clique stays whole.
  for (unsigned I = 1; I != 4; ++I) {
    EXPECT_EQ(R.Assignment[I], R.Assignment[0]);
    EXPECT_EQ(R.Assignment[I + 4], R.Assignment[4]);
  }
  EXPECT_NE(R.Assignment[0], R.Assignment[4]);
}

TEST(PartitionerTest, RespectsBalanceTolerance) {
  // 10 equal nodes, no edges: must split 5/5 within 10%.
  PartitionGraph G(1);
  for (int I = 0; I != 10; ++I)
    G.addNode({100});
  GraphPartitionOptions Opt;
  Opt.NumParts = 2;
  Opt.Tolerances = {0.10};
  GraphPartition R = partitionGraph(G, Opt);
  EXPECT_LE(R.PartWeights[0][0], 550u);
  EXPECT_LE(R.PartWeights[1][0], 550u);
}

TEST(PartitionerTest, GiantNodeStaysFeasible) {
  // One node heavier than the ideal half: assignment must still succeed,
  // with the giant alone-ish on one side.
  PartitionGraph G(1);
  G.addNode({1000});
  for (int I = 0; I != 5; ++I)
    G.addNode({10});
  GraphPartitionOptions Opt;
  Opt.NumParts = 2;
  Opt.Tolerances = {0.05};
  GraphPartition R = partitionGraph(G, Opt);
  ASSERT_EQ(R.Assignment.size(), 6u);
  // The 5 light nodes end up opposite the giant (or with it under the
  // giant-headroom rule); either way every part weight is consistent.
  uint64_t Sum = R.PartWeights[0][0] + R.PartWeights[1][0];
  EXPECT_EQ(Sum, 1050u);
}

TEST(PartitionerTest, MultiConstraintBalanced) {
  // Constraint 0 concentrated on even nodes, constraint 1 on odd ones:
  // both must end up split.
  PartitionGraph G(2);
  for (int I = 0; I != 8; ++I)
    G.addNode(I % 2 == 0 ? std::vector<uint64_t>{100, 0}
                         : std::vector<uint64_t>{0, 50});
  GraphPartitionOptions Opt;
  Opt.NumParts = 2;
  Opt.Tolerances = {0.2, 0.2};
  GraphPartition R = partitionGraph(G, Opt);
  for (unsigned C = 0; C != 2; ++C) {
    uint64_t Total = C == 0 ? 400 : 200;
    EXPECT_LE(R.PartWeights[0][C], Total * 6 / 10);
    EXPECT_LE(R.PartWeights[1][C], Total * 6 / 10);
  }
}

TEST(PartitionerTest, FourWay) {
  // Four 3-cliques in a ring with light bridges.
  PartitionGraph G(1);
  for (int I = 0; I != 12; ++I)
    G.addNode({1});
  for (unsigned K = 0; K != 4; ++K) {
    unsigned Base = K * 3;
    G.addEdge(Base, Base + 1, 10);
    G.addEdge(Base, Base + 2, 10);
    G.addEdge(Base + 1, Base + 2, 10);
    G.addEdge(Base + 2, (Base + 3) % 12, 1);
  }
  GraphPartitionOptions Opt;
  Opt.NumParts = 4;
  GraphPartition R = partitionGraph(G, Opt);
  EXPECT_LE(R.CutWeight, 4u);
  for (unsigned K = 0; K != 4; ++K) {
    EXPECT_EQ(R.Assignment[K * 3], R.Assignment[K * 3 + 1]);
    EXPECT_EQ(R.Assignment[K * 3], R.Assignment[K * 3 + 2]);
  }
}

TEST(PartitionerTest, EmptyAndSingletonGraphs) {
  PartitionGraph Empty(1);
  GraphPartitionOptions Opt;
  Opt.NumParts = 2;
  GraphPartition R = partitionGraph(Empty, Opt);
  EXPECT_TRUE(R.Assignment.empty());
  EXPECT_EQ(R.CutWeight, 0u);

  PartitionGraph One(1);
  One.addNode({5});
  R = partitionGraph(One, Opt);
  ASSERT_EQ(R.Assignment.size(), 1u);
  EXPECT_EQ(R.CutWeight, 0u);
}

TEST(PartitionerTest, SinglePartTrivial) {
  PartitionGraph G = makeTwoCliques();
  GraphPartitionOptions Opt;
  Opt.NumParts = 1;
  GraphPartition R = partitionGraph(G, Opt);
  for (unsigned A : R.Assignment)
    EXPECT_EQ(A, 0u);
}

TEST(PartitionerTest, DeterministicForSeed) {
  PartitionGraph G = makeTwoCliques();
  GraphPartitionOptions Opt;
  Opt.NumParts = 2;
  Opt.Seed = 99;
  GraphPartition A = partitionGraph(G, Opt);
  GraphPartition B = partitionGraph(G, Opt);
  EXPECT_EQ(A.Assignment, B.Assignment);
  EXPECT_EQ(A.CutWeight, B.CutWeight);
}

TEST(PartitionerTest, EscapesBalanceBlockedMinimumViaSwap) {
  // The fir-shaped trap: two heavy nodes that must sit on opposite sides,
  // where only a pairwise exchange reaches the good cut.
  PartitionGraph G(1);
  unsigned In = G.addNode({4096});
  unsigned Out = G.addNode({4096});
  unsigned Coef = G.addNode({96});
  unsigned Mul = G.addNode({0});
  unsigned Scl = G.addNode({0});
  G.addEdge(In, Mul, 100000);
  G.addEdge(Coef, Mul, 100000);
  G.addEdge(Mul, Scl, 50000);
  G.addEdge(Scl, Out, 6144);
  GraphPartitionOptions Opt;
  Opt.NumParts = 2;
  Opt.Tolerances = {0.125};
  GraphPartition R = partitionGraph(G, Opt);
  EXPECT_EQ(R.CutWeight, 6144u);
  EXPECT_EQ(R.Assignment[In], R.Assignment[Coef]);
  EXPECT_NE(R.Assignment[In], R.Assignment[Out]);
}

/// Structural invariants hold for arbitrary random graphs across seeds.
class PartitionerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionerPropertyTest, InvariantsOnRandomGraph) {
  uint64_t Seed = GetParam();
  Random RNG(Seed * 7919 + 1);
  PartitionGraph G(2);
  unsigned N = 20 + static_cast<unsigned>(RNG.nextBelow(180));
  for (unsigned I = 0; I != N; ++I)
    G.addNode({RNG.nextBelow(100), RNG.nextBelow(5)});
  unsigned E = N * 2;
  for (unsigned I = 0; I != E; ++I)
    G.addEdge(static_cast<unsigned>(RNG.nextBelow(N)),
              static_cast<unsigned>(RNG.nextBelow(N)),
              1 + RNG.nextBelow(50));

  GraphPartitionOptions Opt;
  Opt.NumParts = 2 + static_cast<unsigned>(Seed % 3);
  Opt.Seed = Seed;
  GraphPartition R = partitionGraph(G, Opt);

  // Assignment covers every node with a valid part.
  ASSERT_EQ(R.Assignment.size(), N);
  for (unsigned A : R.Assignment)
    EXPECT_LT(A, Opt.NumParts);
  // Reported cut matches a recomputation.
  EXPECT_EQ(R.CutWeight, G.cutWeight(R.Assignment));
  // Part weights sum to the totals.
  auto Totals = G.totalWeights();
  for (unsigned C = 0; C != 2; ++C) {
    uint64_t Sum = 0;
    for (unsigned Pt = 0; Pt != Opt.NumParts; ++Pt)
      Sum += R.PartWeights[Pt][C];
    EXPECT_EQ(Sum, Totals[C]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionerPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(PartitionerTest, CapacitySharesSkewLoads) {
  // 12 unconnected equal nodes with shares {3, 1}: part 0 should carry
  // roughly three quarters of the weight.
  PartitionGraph G(1);
  for (int I = 0; I != 12; ++I)
    G.addNode({100});
  GraphPartitionOptions Opt;
  Opt.NumParts = 2;
  Opt.Tolerances = {0.10};
  Opt.PartCapacityShares = {3.0, 1.0};
  GraphPartition R = partitionGraph(G, Opt);
  EXPECT_GT(R.PartWeights[0][0], R.PartWeights[1][0]);
  EXPECT_LE(R.PartWeights[0][0], 1100u); // ≤ (1+0.1)·1200·(3/4)
  // Part 1's cap is max(share cap 330, giant-node floor ≈ 403).
  EXPECT_LE(R.PartWeights[1][0], 410u);
}

TEST(PartitionerTest, UniformSharesMatchDefault) {
  PartitionGraph G(1);
  for (int I = 0; I != 10; ++I)
    G.addNode({50});
  GraphPartitionOptions A;
  A.NumParts = 2;
  GraphPartitionOptions B = A;
  B.PartCapacityShares = {1.0, 1.0};
  GraphPartition RA = partitionGraph(G, A);
  GraphPartition RB = partitionGraph(G, B);
  EXPECT_EQ(RA.PartWeights, RB.PartWeights);
}
