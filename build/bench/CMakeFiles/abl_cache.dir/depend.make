# Empty dependencies file for abl_cache.
# This may be replaced when dependencies are built.
