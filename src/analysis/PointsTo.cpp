//===- analysis/PointsTo.cpp - Inclusion-based points-to --------------------===//

#include "analysis/PointsTo.h"

#include "ir/Program.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>

using namespace gdp;

namespace {

/// Constraint-graph solver state.
struct Solver {
  unsigned NumNodes;
  std::vector<std::set<int>> Pts;          // node -> object ids
  std::vector<std::set<unsigned>> Succs;   // copy edges (dedup via set)
  std::vector<std::vector<unsigned>> LoadsAt;  // addr node -> dst nodes
  std::vector<std::vector<unsigned>> StoresAt; // addr node -> value nodes
  std::deque<unsigned> Worklist;
  std::vector<bool> InWorklist;
  unsigned NumRegNodes;
  unsigned Iterations = 0;

  explicit Solver(unsigned NumNodes, unsigned NumRegNodes)
      : NumNodes(NumNodes), Pts(NumNodes), Succs(NumNodes),
        LoadsAt(NumNodes), StoresAt(NumNodes), InWorklist(NumNodes, false),
        NumRegNodes(NumRegNodes) {}

  unsigned objNode(int ObjectId) const {
    return NumRegNodes + static_cast<unsigned>(ObjectId);
  }

  void push(unsigned N) {
    if (!InWorklist[N]) {
      InWorklist[N] = true;
      Worklist.push_back(N);
    }
  }

  void addBase(unsigned Node, int ObjectId) {
    if (Pts[Node].insert(ObjectId).second)
      push(Node);
  }

  void addEdge(unsigned From, unsigned To) {
    if (From == To)
      return;
    if (!Succs[From].insert(To).second)
      return;
    // Newly added edge: propagate current set immediately.
    bool Changed = false;
    for (int Obj : Pts[From])
      Changed |= Pts[To].insert(Obj).second;
    if (Changed)
      push(To);
  }

  void solve() {
    while (!Worklist.empty()) {
      ++Iterations;
      unsigned N = Worklist.front();
      Worklist.pop_front();
      InWorklist[N] = false;

      // Complex constraints: *N as a load address or store address.
      for (int Obj : Pts[N]) {
        unsigned Contents = objNode(Obj);
        for (unsigned Dst : LoadsAt[N])
          addEdge(Contents, Dst);
        for (unsigned Val : StoresAt[N])
          addEdge(Val, Contents);
      }

      // Copy edges.
      for (unsigned To : Succs[N]) {
        bool Changed = false;
        for (int Obj : Pts[N])
          Changed |= Pts[To].insert(Obj).second;
        if (Changed)
          push(To);
      }
    }
  }
};

/// True if pointers may flow through \p Op from its sources to its
/// destination (register-level copy semantics for the analysis).
bool isPointerTransparent(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
  case Opcode::ICMove:
  case Opcode::Select:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Min:
  case Opcode::Max:
    return true;
  default:
    return false;
  }
}

} // namespace

PointsTo::PointsTo(const Program &P) {
  // Node layout: all registers of all functions first, then one "contents"
  // node per data object.
  RegBase.resize(P.getNumFunctions());
  NumRegNodes = 0;
  for (unsigned F = 0; F != P.getNumFunctions(); ++F) {
    RegBase[F] = NumRegNodes;
    NumRegNodes += P.getFunction(F).getNumVRegs();
  }
  unsigned NumNodes = NumRegNodes + P.getNumObjects();
  Solver S(NumNodes, NumRegNodes);

  // Per-function return-value registers, for call-result binding.
  std::vector<std::vector<unsigned>> RetNodes(P.getNumFunctions());

  for (const auto &F : P.functions()) {
    unsigned FId = static_cast<unsigned>(F->getId());
    auto RN = [&](int Reg) { return RegBase[FId] + static_cast<unsigned>(Reg); };
    for (const auto &BB : F->blocks()) {
      for (const auto &Op : BB->operations()) {
        switch (Op->getOpcode()) {
        case Opcode::AddrOf:
          S.addBase(RN(Op->getDest()), static_cast<int>(Op->getImm()));
          break;
        case Opcode::Malloc:
          S.addBase(RN(Op->getDest()), Op->getMallocSite());
          break;
        case Opcode::Load:
          S.LoadsAt[RN(Op->getSrc(0))].push_back(RN(Op->getDest()));
          S.push(RN(Op->getSrc(0)));
          break;
        case Opcode::Store:
          S.StoresAt[RN(Op->getSrc(1))].push_back(RN(Op->getSrc(0)));
          S.push(RN(Op->getSrc(1)));
          break;
        case Opcode::Call: {
          const Function &Callee =
              P.getFunction(static_cast<unsigned>(Op->getCallee()));
          unsigned CalleeBase = RegBase[static_cast<unsigned>(Callee.getId())];
          for (unsigned A = 0; A != Op->getNumSrcs(); ++A)
            S.addEdge(RN(Op->getSrc(A)), CalleeBase + A);
          // Return binding is completed after the scan (RetNodes).
          break;
        }
        case Opcode::Ret:
          if (Op->getNumSrcs() > 0)
            RetNodes[FId].push_back(RN(Op->getSrc(0)));
          break;
        default:
          if (Op->hasDest() && isPointerTransparent(Op->getOpcode())) {
            unsigned First = Op->getOpcode() == Opcode::Select ? 1u : 0u;
            for (unsigned I = First, E = Op->getNumSrcs(); I != E; ++I)
              S.addEdge(RN(Op->getSrc(I)), RN(Op->getDest()));
          }
          break;
        }
      }
    }
  }

  // Bind call results to callee return values.
  for (const auto &F : P.functions()) {
    unsigned FId = static_cast<unsigned>(F->getId());
    for (const auto &BB : F->blocks())
      for (const auto &Op : BB->operations()) {
        if (Op->getOpcode() != Opcode::Call || !Op->hasDest())
          continue;
        unsigned Dst = RegBase[FId] + static_cast<unsigned>(Op->getDest());
        for (unsigned RetNode :
             RetNodes[static_cast<unsigned>(Op->getCallee())])
          S.addEdge(RetNode, Dst);
      }
  }

  S.solve();
  NumIterations = S.Iterations;

  Solution.resize(NumNodes);
  for (unsigned N = 0; N != NumNodes; ++N)
    Solution[N].assign(S.Pts[N].begin(), S.Pts[N].end());
}

const std::vector<int> &PointsTo::pointsTo(unsigned FunctionId,
                                           unsigned Reg) const {
  unsigned Node = regNode(FunctionId, Reg);
  assert(Node < Solution.size() && "register node out of range");
  return Solution[Node];
}

const std::vector<int> &PointsTo::contents(unsigned ObjectId) const {
  unsigned Node = objNode(ObjectId);
  assert(Node < Solution.size() && "object node out of range");
  return Solution[Node];
}

unsigned gdp::annotateMemoryAccesses(Program &P) {
  PointsTo PT(P);
  unsigned NumEmpty = 0;
  for (const auto &F : P.functions()) {
    unsigned FId = static_cast<unsigned>(F->getId());
    for (const auto &BB : F->blocks()) {
      for (const auto &Op : BB->operations()) {
        if (!opcodeReferencesMemory(Op->getOpcode()))
          continue;
        Op->clearAccessSet();
        switch (Op->getOpcode()) {
        case Opcode::AddrOf:
          Op->addAccessedObject(static_cast<int>(Op->getImm()));
          break;
        case Opcode::Malloc:
          Op->addAccessedObject(Op->getMallocSite());
          break;
        case Opcode::Load: {
          const auto &Objs =
              PT.pointsTo(FId, static_cast<unsigned>(Op->getSrc(0)));
          for (int Obj : Objs)
            Op->addAccessedObject(Obj);
          if (Objs.empty())
            ++NumEmpty;
          break;
        }
        case Opcode::Store: {
          const auto &Objs =
              PT.pointsTo(FId, static_cast<unsigned>(Op->getSrc(1)));
          for (int Obj : Objs)
            Op->addAccessedObject(Obj);
          if (Objs.empty())
            ++NumEmpty;
          break;
        }
        default:
          break;
        }
      }
    }
  }
  return NumEmpty;
}
