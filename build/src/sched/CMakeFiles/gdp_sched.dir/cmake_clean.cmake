file(REMOVE_RECURSE
  "CMakeFiles/gdp_sched.dir/BlockDFG.cpp.o"
  "CMakeFiles/gdp_sched.dir/BlockDFG.cpp.o.d"
  "CMakeFiles/gdp_sched.dir/Estimator.cpp.o"
  "CMakeFiles/gdp_sched.dir/Estimator.cpp.o.d"
  "CMakeFiles/gdp_sched.dir/ListScheduler.cpp.o"
  "CMakeFiles/gdp_sched.dir/ListScheduler.cpp.o.d"
  "CMakeFiles/gdp_sched.dir/SchedulePrinter.cpp.o"
  "CMakeFiles/gdp_sched.dir/SchedulePrinter.cpp.o.d"
  "libgdp_sched.a"
  "libgdp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
