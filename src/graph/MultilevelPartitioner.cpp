//===- graph/MultilevelPartitioner.cpp - Multilevel k-way cut ---------------===//

#include "graph/MultilevelPartitioner.h"

#include "graph/CSRGraph.h"
#include "graph/GainBucket.h"
#include "support/Arena.h"
#include "support/Random.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace gdp;

double GraphPartition::maxNormalizedLoad(
    const std::vector<uint64_t> &Totals) const {
  double Worst = 0;
  unsigned NumParts = static_cast<unsigned>(PartWeights.size());
  for (unsigned P = 0; P != NumParts; ++P)
    for (unsigned C = 0; C != Totals.size(); ++C) {
      if (Totals[C] == 0)
        continue;
      double Ideal = static_cast<double>(Totals[C]) / NumParts;
      Worst = std::max(Worst, static_cast<double>(PartWeights[P][C]) / Ideal);
    }
  return Worst;
}

namespace {

/// Per-part, per-constraint capacity table.
using CapacityTable = std::vector<std::vector<uint64_t>>;

/// Event counts of one partitionGraph() call, accumulated locally and
/// flushed to telemetry once at the end (keeps the hot loops branch-free).
struct RunStats {
  uint64_t RefinePasses = 0;
  uint64_t RefineMoves = 0;
  uint64_t SwapMoves = 0;
  uint64_t BalanceMoves = 0;
};

/// Scratch buffers shared by every pass and level of one partitionGraph()
/// call: the permutation buffer is re-shuffled in place, connectivity and
/// part-weight tables are resized once per level, and the gain bucket
/// reuses its handle table. Nothing here is allocated per pass; the flat
/// buffers live on the run's arena (PW keeps nested heap vectors — its
/// rows flow out as GraphPartition::PartWeights).
struct RefineContext {
  explicit RefineContext(support::Arena *A)
      : Order(A), Conn(A), Ideal(A), NormP(A), Bucket(A), Locked(A),
        Boundary(A), Match(A) {}

  support::ArenaVector<unsigned> Order;   ///< Shuffled visit order.
  support::ArenaVector<int64_t> Conn;     ///< Per-part connectivity.
  std::vector<std::vector<uint64_t>> PW;  ///< Per-part constraint weights.
  support::ArenaVector<double> Ideal;     ///< Per-constraint ideal load.
  support::ArenaVector<double> NormP;     ///< Per-part normalized load.
  GainBucket Bucket;
  support::ArenaVector<uint8_t> Locked;   ///< Moved-this-pass node marks.
  support::ArenaVector<unsigned> Boundary;///< swapPass candidate list.
  support::ArenaVector<int> Match;        ///< coarsenMatch partner table.
};

/// Shared helpers for one partitioning run.
struct Context {
  const GraphPartitionOptions &Opt;

  double tolerance(unsigned C) const {
    return C < Opt.Tolerances.size() ? Opt.Tolerances[C]
                                     : Opt.DefaultTolerance;
  }

  /// Fraction of the total weight part \p P may hold (uniform when no
  /// capacity shares were given).
  double shareOf(unsigned P) const {
    if (Opt.PartCapacityShares.empty())
      return 1.0 / Opt.NumParts;
    double Total = 0;
    for (unsigned Q = 0; Q != Opt.NumParts; ++Q)
      Total += Q < Opt.PartCapacityShares.size()
                   ? Opt.PartCapacityShares[Q]
                   : 1.0;
    double Mine =
        P < Opt.PartCapacityShares.size() ? Opt.PartCapacityShares[P] : 1.0;
    return Total > 0 ? Mine / Total : 1.0 / Opt.NumParts;
  }

  /// Per-part, per-constraint capacities, never below the heaviest single
  /// node so that a feasible assignment always exists.
  CapacityTable maxAllowed(const CSRGraph &G) const {
    const std::vector<uint64_t> &Totals = G.totalWeights();
    CapacityTable Result(Opt.NumParts,
                         std::vector<uint64_t>(Totals.size()));
    for (unsigned C = 0; C != Totals.size(); ++C) {
      uint64_t Heaviest = 0;
      for (unsigned N = 0; N != G.getNumNodes(); ++N)
        Heaviest = std::max(Heaviest, G.nodeWeight(N, C));
      for (unsigned P = 0; P != Opt.NumParts; ++P) {
        if (Totals[C] == 0) {
          Result[P][C] = std::numeric_limits<uint64_t>::max();
          continue;
        }
        double Cap = (1.0 + tolerance(C)) *
                     static_cast<double>(Totals[C]) * shareOf(P);
        // A feasible assignment must always exist, so the capacity is
        // never below the heaviest single node — plus that node's fair
        // share of the remaining weight, so small nodes that belong with
        // a giant one aren't forced out by a sliver of slack.
        double GiantCap =
            static_cast<double>(Heaviest) +
            (1.0 + tolerance(C)) *
                static_cast<double>(Totals[C] - Heaviest) * shareOf(P);
        Result[P][C] = static_cast<uint64_t>(std::max(Cap, GiantCap));
      }
    }
    return Result;
  }
};

void computePartWeightsInto(const CSRGraph &G,
                            const std::vector<unsigned> &Assign,
                            unsigned NumParts,
                            std::vector<std::vector<uint64_t>> &PW) {
  unsigned NumC = G.getNumConstraints();
  PW.resize(NumParts);
  for (auto &Part : PW)
    Part.assign(NumC, 0);
  for (unsigned N = 0; N != G.getNumNodes(); ++N) {
    const uint64_t *NW = G.nodeWeights(N);
    for (unsigned C = 0; C != NumC; ++C)
      PW[Assign[N]][C] += NW[C];
  }
}

std::vector<std::vector<uint64_t>>
computePartWeights(const CSRGraph &G, const std::vector<unsigned> &Assign,
                   unsigned NumParts) {
  std::vector<std::vector<uint64_t>> PW;
  computePartWeightsInto(G, Assign, NumParts, PW);
  return PW;
}

double normalizedLoad(const std::vector<std::vector<uint64_t>> &PW,
                      const std::vector<uint64_t> &Totals) {
  double Worst = 0;
  for (const auto &Part : PW)
    for (unsigned C = 0; C != Totals.size(); ++C) {
      if (Totals[C] == 0)
        continue;
      double Ideal =
          static_cast<double>(Totals[C]) / static_cast<double>(PW.size());
      Worst = std::max(Worst, static_cast<double>(Part[C]) / Ideal);
    }
  return Worst;
}

/// Normalized load of one part's weight vector against the ideal loads.
double normOfPart(const std::vector<uint64_t> &Part,
                  const support::ArenaVector<double> &Ideal) {
  double Worst = 0;
  for (unsigned C = 0; C != Ideal.size(); ++C)
    if (Ideal[C] > 0)
      Worst = std::max(Worst, static_cast<double>(Part[C]) / Ideal[C]);
  return Worst;
}

/// Re-shuffles the persistent permutation buffer in place (Fisher-Yates,
/// same draw sequence as a freshly built vector).
void shuffleNodesInto(support::ArenaVector<unsigned> &Order, unsigned N,
                      Random &RNG) {
  Order.resize(N);
  for (unsigned I = 0; I != N; ++I)
    Order[I] = I;
  for (unsigned I = N; I > 1; --I)
    std::swap(Order[I - 1], Order[RNG.nextBelow(I)]);
}

/// One heavy-edge-matching coarsening step. Writes the fine→coarse mapping
/// (coarse ids in first-appearance order of fine ids) and returns the
/// number of coarse nodes; the caller builds the coarse CSR directly from
/// the mapping — no intermediate accumulator graph.
unsigned coarsenMatch(const CSRGraph &G, Random &RNG,
                      std::vector<unsigned> &FineToCoarse,
                      RefineContext &RC) {
  unsigned N = G.getNumNodes();
  auto &Match = RC.Match;
  Match.assign(N, -1);
  shuffleNodesInto(RC.Order, N, RNG);
  for (unsigned Node : RC.Order) {
    if (Match[Node] >= 0)
      continue;
    // Heaviest-edge unmatched neighbor; ties broken by smaller id for
    // determinism.
    int Best = -1;
    uint64_t BestW = 0;
    for (uint32_t E = G.edgeBegin(Node), End = G.edgeEnd(Node); E != End;
         ++E) {
      unsigned Nbr = G.edgeTarget(E);
      uint64_t W = G.edgeWeight(E);
      if (Match[Nbr] >= 0 || Nbr == Node)
        continue;
      if (Best < 0 || W > BestW ||
          (W == BestW && Nbr < static_cast<unsigned>(Best))) {
        Best = static_cast<int>(Nbr);
        BestW = W;
      }
    }
    if (Best >= 0) {
      Match[Node] = Best;
      Match[Best] = static_cast<int>(Node);
    } else {
      Match[Node] = static_cast<int>(Node); // Self-match (unmatched).
    }
  }

  FineToCoarse.assign(N, ~0u);
  unsigned NumCoarse = 0;
  for (unsigned Node = 0; Node != N; ++Node) {
    if (FineToCoarse[Node] != ~0u)
      continue;
    unsigned Partner = static_cast<unsigned>(Match[Node]);
    unsigned Coarsened = NumCoarse++;
    FineToCoarse[Node] = Coarsened;
    if (Partner != Node)
      FineToCoarse[Partner] = Coarsened;
  }
  return NumCoarse;
}

/// Moves nodes out of overloaded parts until every part fits its capacity
/// (bounded effort).
void repairBalance(const CSRGraph &G, std::vector<unsigned> &Assign,
                   RefineContext &RC, const CapacityTable &MaxAllowed,
                   const GraphPartitionOptions &Opt, Random &RNG,
                   RunStats &RS) {
  unsigned NumParts = Opt.NumParts;
  auto &PW = RC.PW;
  for (unsigned Round = 0; Round != 4 * G.getNumNodes() + 16; ++Round) {
    // Find the most overloaded (part, constraint).
    int WorstPart = -1;
    unsigned WorstC = 0;
    double WorstRatio = 1.0;
    for (unsigned P = 0; P != NumParts; ++P)
      for (unsigned C = 0; C != MaxAllowed[P].size(); ++C) {
        if (MaxAllowed[P][C] == std::numeric_limits<uint64_t>::max() ||
            PW[P][C] <= MaxAllowed[P][C])
          continue;
        double Ratio = static_cast<double>(PW[P][C]) /
                       static_cast<double>(MaxAllowed[P][C]);
        if (Ratio > WorstRatio) {
          WorstRatio = Ratio;
          WorstPart = static_cast<int>(P);
          WorstC = C;
        }
      }
    if (WorstPart < 0)
      return; // Balanced.

    // Move the node contributing to the overload whose departure hurts the
    // cut least, to the part with the lowest load on the offending
    // constraint.
    unsigned Target = 0;
    for (unsigned P = 1; P != NumParts; ++P)
      if (PW[P][WorstC] < PW[Target][WorstC])
        Target = P;
    if (Target == static_cast<unsigned>(WorstPart))
      return; // Nothing lighter exists; give up.

    int BestNode = -1;
    int64_t BestGain = std::numeric_limits<int64_t>::min();
    shuffleNodesInto(RC.Order, G.getNumNodes(), RNG);
    for (unsigned Node : RC.Order) {
      if (Assign[Node] != static_cast<unsigned>(WorstPart) ||
          G.nodeWeight(Node, WorstC) == 0)
        continue;
      int64_t Gain = 0;
      for (uint32_t E = G.edgeBegin(Node), End = G.edgeEnd(Node); E != End;
           ++E) {
        unsigned Nbr = G.edgeTarget(E);
        if (Assign[Nbr] == Target)
          Gain += static_cast<int64_t>(G.edgeWeight(E));
        else if (Assign[Nbr] == static_cast<unsigned>(WorstPart))
          Gain -= static_cast<int64_t>(G.edgeWeight(E));
      }
      if (Gain > BestGain) {
        BestGain = Gain;
        BestNode = static_cast<int>(Node);
      }
    }
    if (BestNode < 0)
      return;
    const uint64_t *NW = G.nodeWeights(static_cast<unsigned>(BestNode));
    for (unsigned C = 0; C != MaxAllowed[0].size(); ++C) {
      PW[static_cast<unsigned>(WorstPart)][C] -= NW[C];
      PW[Target][C] += NW[C];
    }
    Assign[static_cast<unsigned>(BestNode)] = Target;
    ++RS.BalanceMoves;
  }
}

/// One bucket-based FM refinement pass; returns the number of applied
/// moves. Each free node carries its best candidate move in an
/// addressable priority structure ordered (gain desc, part asc, node
/// asc); applying a move updates only the moved node's neighborhood
/// instead of recomputing every node's gain vector. Feasibility (part
/// capacities) can go stale for non-neighbors as weights shift, so
/// entries are revalidated lazily at extraction: a popped entry whose
/// recomputed candidate differs is re-queued with the true key. Moved
/// nodes are locked for the remainder of the pass (classic FM), which
/// bounds the pass at one move per node.
unsigned refinePass(const CSRGraph &G, std::vector<unsigned> &Assign,
                    RefineContext &RC, const CapacityTable &MaxAllowed,
                    const GraphPartitionOptions &Opt, uint64_t MoveCap) {
  unsigned NumParts = Opt.NumParts;
  unsigned N = G.getNumNodes();
  unsigned NumC = G.getNumConstraints();
  auto &PW = RC.PW;
  auto &Conn = RC.Conn;
  Conn.assign(NumParts, 0);

  // Refresh the per-part normalized loads (swap passes shift weights
  // without maintaining them).
  RC.NormP.resize(NumParts);
  for (unsigned P = 0; P != NumParts; ++P)
    RC.NormP[P] = normOfPart(PW[P], RC.Ideal);

  // Best feasible destination by gain, ties to smaller part id.
  auto bestOf = [&](unsigned Node, int64_t &GainOut,
                    unsigned &PartOut) -> bool {
    unsigned From = Assign[Node];
    std::fill(Conn.begin(), Conn.end(), int64_t{0});
    for (uint32_t E = G.edgeBegin(Node), End = G.edgeEnd(Node); E != End; ++E)
      Conn[Assign[G.edgeTarget(E)]] += static_cast<int64_t>(G.edgeWeight(E));
    const uint64_t *NW = G.nodeWeights(Node);
    int Best = -1;
    int64_t BestGain = std::numeric_limits<int64_t>::min();
    for (unsigned P = 0; P != NumParts; ++P) {
      if (P == From)
        continue;
      bool Fits = true;
      for (unsigned C = 0; C != NumC; ++C)
        if (MaxAllowed[P][C] != std::numeric_limits<uint64_t>::max() &&
            PW[P][C] + NW[C] > MaxAllowed[P][C]) {
          Fits = false;
          break;
        }
      if (!Fits)
        continue;
      int64_t Gain = Conn[P] - Conn[From];
      if (Gain > BestGain) {
        BestGain = Gain;
        Best = static_cast<int>(P);
      }
    }
    if (Best < 0)
      return false;
    GainOut = BestGain;
    PartOut = static_cast<unsigned>(Best);
    return true;
  };

  auto &Bucket = RC.Bucket;
  Bucket.reset(N);
  RC.Locked.assign(N, 0);
  for (unsigned Node = 0; Node != N; ++Node) {
    int64_t Gain;
    unsigned Part;
    if (bestOf(Node, Gain, Part))
      Bucket.insertOrUpdate(Node, Part, Gain);
  }

  unsigned Moved = 0;
  while (!Bucket.empty()) {
    if (Moved >= MoveCap)
      break; // Per-level move budget spent; keep what we have.
    GainBucket::Entry E = Bucket.top();
    int64_t Gain;
    unsigned Part;
    if (!bestOf(E.Node, Gain, Part)) {
      Bucket.erase(E.Node); // No feasible destination anymore.
      continue;
    }
    if (Gain != E.Gain || Part != E.Part) {
      Bucket.insertOrUpdate(E.Node, Part, Gain); // Stale; re-queue.
      continue;
    }
    unsigned From = Assign[E.Node];
    bool Accept = Gain > 0;
    if (!Accept && Gain == 0) {
      // Zero-gain moves accepted only if they strictly improve balance.
      // Only From and Part change, so the delta needs the two new part
      // loads plus the standing maximum of the others — no full rescan.
      const uint64_t *NW = G.nodeWeights(E.Node);
      double Before = 0, Others = 0;
      for (unsigned P = 0; P != NumParts; ++P) {
        Before = std::max(Before, RC.NormP[P]);
        if (P != From && P != Part)
          Others = std::max(Others, RC.NormP[P]);
      }
      double NewFrom = 0, NewTo = 0;
      for (unsigned C = 0; C != NumC; ++C) {
        if (RC.Ideal[C] <= 0)
          continue;
        NewFrom = std::max(
            NewFrom, static_cast<double>(PW[From][C] - NW[C]) / RC.Ideal[C]);
        NewTo = std::max(
            NewTo, static_cast<double>(PW[Part][C] + NW[C]) / RC.Ideal[C]);
      }
      double After = std::max({Others, NewFrom, NewTo});
      Accept = After + 1e-12 < Before;
    }
    if (!Accept) {
      Bucket.erase(E.Node); // Re-queued if a neighbor's move revives it.
      continue;
    }

    const uint64_t *NW = G.nodeWeights(E.Node);
    for (unsigned C = 0; C != NumC; ++C) {
      PW[From][C] -= NW[C];
      PW[Part][C] += NW[C];
    }
    RC.NormP[From] = normOfPart(PW[From], RC.Ideal);
    RC.NormP[Part] = normOfPart(PW[Part], RC.Ideal);
    Assign[E.Node] = Part;
    ++Moved;
    Bucket.erase(E.Node);
    RC.Locked[E.Node] = 1;

    // Incremental update: only the moved node's neighborhood changed.
    for (uint32_t S = G.edgeBegin(E.Node), End = G.edgeEnd(E.Node); S != End;
         ++S) {
      unsigned M = G.edgeTarget(S);
      if (RC.Locked[M])
        continue;
      int64_t MG;
      unsigned MP;
      if (bestOf(M, MG, MP))
        Bucket.insertOrUpdate(M, MP, MG);
      else
        Bucket.erase(M);
    }
  }
  return Moved;
}

/// Pairwise swap pass over boundary nodes: escapes the local minima where
/// every single move is blocked by a balance constraint but exchanging two
/// nodes across the cut is both feasible and profitable. Returns the
/// number of applied swaps.
unsigned swapPass(const CSRGraph &G, std::vector<unsigned> &Assign,
                  RefineContext &RC, const CapacityTable &MaxAllowed) {
  auto &PW = RC.PW;
  // Boundary nodes only (nodes with a cut edge), capped for cost.
  constexpr unsigned MaxBoundary = 256;
  auto &Boundary = RC.Boundary;
  Boundary.clear();
  for (unsigned N = 0; N != G.getNumNodes() && Boundary.size() < MaxBoundary;
       ++N)
    for (uint32_t E = G.edgeBegin(N), End = G.edgeEnd(N); E != End; ++E)
      if (Assign[G.edgeTarget(E)] != Assign[N]) {
        Boundary.push_back(N);
        break;
      }

  auto GainOf = [&](unsigned Node, unsigned To) {
    int64_t Gain = 0;
    for (uint32_t E = G.edgeBegin(Node), End = G.edgeEnd(Node); E != End;
         ++E) {
      unsigned Nbr = G.edgeTarget(E);
      if (Assign[Nbr] == To)
        Gain += static_cast<int64_t>(G.edgeWeight(E));
      else if (Assign[Nbr] == Assign[Node])
        Gain -= static_cast<int64_t>(G.edgeWeight(E));
    }
    return Gain;
  };

  unsigned Swapped = 0;
  for (size_t I = 0; I != Boundary.size(); ++I) {
    unsigned A = Boundary[I];
    for (size_t J = I + 1; J != Boundary.size(); ++J) {
      unsigned B = Boundary[J];
      unsigned PA = Assign[A], PB = Assign[B];
      if (PA == PB)
        continue;
      int64_t Gain = GainOf(A, PB) + GainOf(B, PA) -
                     2 * static_cast<int64_t>(G.edgeWeightBetween(A, B));
      if (Gain <= 0)
        continue;
      // Feasibility of the exchange under every constraint.
      const uint64_t *WA = G.nodeWeights(A);
      const uint64_t *WB = G.nodeWeights(B);
      bool Fits = true;
      for (unsigned C = 0; C != G.getNumConstraints() && Fits; ++C) {
        // Members' weights never exceed their part's weight, so these
        // subtractions cannot underflow.
        uint64_t NewPB = PW[PB][C] - WB[C] + WA[C];
        uint64_t NewPA = PW[PA][C] - WA[C] + WB[C];
        Fits = (MaxAllowed[PB][C] == std::numeric_limits<uint64_t>::max() ||
                NewPB <= MaxAllowed[PB][C]) &&
               (MaxAllowed[PA][C] == std::numeric_limits<uint64_t>::max() ||
                NewPA <= MaxAllowed[PA][C]);
      }
      if (!Fits)
        continue;
      for (unsigned C = 0; C != G.getNumConstraints(); ++C) {
        PW[PA][C] = PW[PA][C] - WA[C] + WB[C];
        PW[PB][C] = PW[PB][C] - WB[C] + WA[C];
      }
      Assign[A] = PB;
      Assign[B] = PA;
      ++Swapped;
      break; // A moved; continue with the next A.
    }
  }
  return Swapped;
}

void refine(const CSRGraph &G, std::vector<unsigned> &Assign,
            const GraphPartitionOptions &Opt, const Context &Ctx,
            RefineContext &RC, Random &RNG, RunStats &RS) {
  computePartWeightsInto(G, Assign, Opt.NumParts, RC.PW);
  auto MaxAllowed = Ctx.maxAllowed(G);
  const auto &Totals = G.totalWeights();
  RC.Ideal.assign(Totals.size(), 0.0);
  for (unsigned C = 0; C != Totals.size(); ++C)
    if (Totals[C] != 0)
      RC.Ideal[C] =
          static_cast<double>(Totals[C]) / static_cast<double>(Opt.NumParts);
  repairBalance(G, Assign, RC, MaxAllowed, Opt, RNG, RS);
  // Per-level accepted-move budget (0 = unlimited): bounds refinement work
  // deterministically — the cap trips after the same move sequence no
  // matter the thread count, unlike a wall-clock check would.
  uint64_t MovesLeft = Opt.MaxRefineMoves
                           ? Opt.MaxRefineMoves
                           : std::numeric_limits<uint64_t>::max();
  for (unsigned Pass = 0; Pass != Opt.MaxRefinePasses; ++Pass) {
    unsigned Moved = refinePass(G, Assign, RC, MaxAllowed, Opt, MovesLeft);
    MovesLeft -= Moved;
    unsigned Swapped = MovesLeft ? swapPass(G, Assign, RC, MaxAllowed) : 0;
    ++RS.RefinePasses;
    RS.RefineMoves += Moved;
    RS.SwapMoves += Swapped;
    if ((!Moved && !Swapped) || !MovesLeft)
      break;
  }
}

/// Greedy initial assignment at the coarsest level.
std::vector<unsigned> initialAssign(const CSRGraph &G,
                                    const GraphPartitionOptions &Opt,
                                    const Context &Ctx, RefineContext &RC,
                                    Random &RNG) {
  unsigned NumParts = Opt.NumParts;
  unsigned NumC = G.getNumConstraints();
  std::vector<unsigned> Assign(G.getNumNodes(), 0);
  std::vector<std::vector<uint64_t>> PW(NumParts,
                                        std::vector<uint64_t>(NumC, 0));
  auto MaxAllowed = Ctx.maxAllowed(G);
  const auto &Totals = G.totalWeights();
  std::vector<bool> Placed(G.getNumNodes(), false);

  auto &Conn = RC.Conn;
  shuffleNodesInto(RC.Order, G.getNumNodes(), RNG);
  for (unsigned Node : RC.Order) {
    const uint64_t *NW = G.nodeWeights(Node);
    // Connectivity to already-placed neighbors per part.
    Conn.assign(NumParts, 0);
    for (uint32_t E = G.edgeBegin(Node), End = G.edgeEnd(Node); E != End;
         ++E) {
      unsigned Nbr = G.edgeTarget(E);
      if (Placed[Nbr])
        Conn[Assign[Nbr]] += static_cast<int64_t>(G.edgeWeight(E));
    }

    int Best = -1;
    double BestScore = -1e300;
    for (unsigned P = 0; P != NumParts; ++P) {
      bool Fits = true;
      for (unsigned C = 0; C != NumC; ++C)
        if (MaxAllowed[P][C] != std::numeric_limits<uint64_t>::max() &&
            PW[P][C] + NW[C] > MaxAllowed[P][C]) {
          Fits = false;
          break;
        }
      // Score: connectivity first, then lower normalized load. Infeasible
      // parts are heavily penalized but not excluded (a fallback must
      // always exist).
      double Load = 0;
      for (unsigned C = 0; C != NumC; ++C) {
        if (Totals[C] == 0)
          continue;
        double Ideal = static_cast<double>(Totals[C]) / NumParts;
        Load = std::max(Load,
                        static_cast<double>(PW[P][C] + NW[C]) / Ideal);
      }
      double Score = static_cast<double>(Conn[P]) - 0.25 * Load *
                     (1.0 + static_cast<double>(G.totalEdgeWeight()) /
                                std::max<uint64_t>(1, G.getNumNodes()));
      if (!Fits)
        Score -= 1e12;
      if (Score > BestScore) {
        BestScore = Score;
        Best = static_cast<int>(P);
      }
    }
    Assign[Node] = static_cast<unsigned>(Best);
    Placed[Node] = true;
    for (unsigned C = 0; C != NumC; ++C)
      PW[static_cast<unsigned>(Best)][C] += NW[C];
  }
  return Assign;
}

/// Greedy graph growing (GGGP, the METIS initial-partition family for
/// k = 2): start with everything in part 0, then grow part 1 from a seed
/// node by repeatedly pulling over the highest-gain node until part 0 fits
/// its capacity. Produces the "natural" cuts that random greedy
/// assignment misses. Only used for bisection.
std::vector<unsigned> gggpAssign(const CSRGraph &G,
                                 const CapacityTable &MaxAllowed,
                                 unsigned SeedNode) {
  unsigned N = G.getNumNodes();
  unsigned NumC = G.getNumConstraints();
  std::vector<unsigned> Assign(N, 0);
  std::vector<std::vector<uint64_t>> PW(2, std::vector<uint64_t>(NumC, 0));
  PW[0] = G.totalWeights();

  auto Part0Fits = [&]() {
    for (unsigned C = 0; C != MaxAllowed[0].size(); ++C)
      if (MaxAllowed[0][C] != std::numeric_limits<uint64_t>::max() &&
          PW[0][C] > MaxAllowed[0][C])
        return false;
    return true;
  };
  auto MoveTo1 = [&](unsigned Node) {
    Assign[Node] = 1;
    const uint64_t *NW = G.nodeWeights(Node);
    for (unsigned C = 0; C != MaxAllowed[0].size(); ++C) {
      PW[0][C] -= NW[C];
      PW[1][C] += NW[C];
    }
  };

  MoveTo1(SeedNode);
  while (!Part0Fits()) {
    int Best = -1;
    int64_t BestGain = std::numeric_limits<int64_t>::min();
    for (unsigned Node = 0; Node != N; ++Node) {
      if (Assign[Node] == 1)
        continue;
      // Part 1 must stay feasible.
      bool Fits = true;
      for (unsigned C = 0; C != MaxAllowed[1].size(); ++C)
        if (MaxAllowed[1][C] != std::numeric_limits<uint64_t>::max() &&
            PW[1][C] + G.nodeWeight(Node, C) > MaxAllowed[1][C]) {
          Fits = false;
          break;
        }
      if (!Fits)
        continue;
      int64_t Gain = 0;
      for (uint32_t E = G.edgeBegin(Node), End = G.edgeEnd(Node); E != End;
           ++E)
        Gain += Assign[G.edgeTarget(E)] == 1
                    ? static_cast<int64_t>(G.edgeWeight(E))
                    : -static_cast<int64_t>(G.edgeWeight(E));
      // Prefer to move weight-bearing nodes when growth is mandatory.
      if (Gain > BestGain) {
        BestGain = Gain;
        Best = static_cast<int>(Node);
      }
    }
    if (Best < 0)
      break; // Nothing feasible to move; leave as-is.
    MoveTo1(static_cast<unsigned>(Best));
  }
  return Assign;
}

} // namespace

GraphPartition gdp::partitionGraph(const PartitionGraph &G,
                                   const GraphPartitionOptions &Opt) {
  assert(Opt.NumParts >= 1 && "need at least one part");
  Context Ctx{Opt};
  Random RNG(Opt.Seed);
  RunStats RS;

  // All transient state — CSR levels, refinement scratch, match tables —
  // lives on the calling thread's scratch arena and is released (blocks
  // kept warm) when this call returns. Only the result escapes, on the
  // heap.
  support::ScratchArena Scope;
  support::Arena *A = &Scope.arena();
  RefineContext RC(A);

  GraphPartition Result;
  if (G.getNumNodes() == 0) {
    Result.PartWeights.assign(
        Opt.NumParts, std::vector<uint64_t>(G.getNumConstraints(), 0));
    return Result;
  }

  // --- Graph layer: one cache-linear CSR snapshot per level; the
  // edge-list PartitionGraph is only the construction-time accumulator.
  std::vector<CSRGraph> Levels;
  Levels.emplace_back(G, A);

  if (Opt.NumParts == 1) {
    Result.Assignment.assign(G.getNumNodes(), 0);
    Result.PartWeights = computePartWeights(Levels[0], Result.Assignment, 1);
    return Result;
  }

  // --- Coarsening phase.
  std::vector<std::vector<unsigned>> Mappings; // Mappings[i]: level i -> i+1
  while (Levels.back().getNumNodes() > Opt.CoarsenTargetNodes) {
    std::vector<unsigned> FineToCoarse;
    unsigned NumCoarse = coarsenMatch(Levels.back(), RNG, FineToCoarse, RC);
    // Stop if matching stalls (under 5% reduction) — decided before any
    // coarse graph is materialized.
    if (NumCoarse * 20 > Levels.back().getNumNodes() * 19)
      break;
    // Built as a named temporary: an emplace_back reading Levels.back()
    // while the vector may reallocate would be UB.
    CSRGraph Coarse(Levels.back(), FineToCoarse, NumCoarse, A);
    Mappings.push_back(std::move(FineToCoarse));
    Levels.push_back(std::move(Coarse));
  }

  // --- Initial partition at the coarsest level: best of several random
  // greedy tries plus (for bisection) greedy graph growing from the
  // heaviest seeds.
  const CSRGraph &Coarsest = Levels.back();
  std::vector<unsigned> Best;
  uint64_t BestCut = 0;
  double BestLoad = 0;
  auto Consider = [&](std::vector<unsigned> Assign) {
    refine(Coarsest, Assign, Opt, Ctx, RC, RNG, RS);
    uint64_t Cut = Coarsest.cutWeight(Assign);
    double Load = normalizedLoad(
        computePartWeights(Coarsest, Assign, Opt.NumParts),
        Coarsest.totalWeights());
    if (Best.empty() || Cut < BestCut ||
        (Cut == BestCut && Load < BestLoad)) {
      Best = std::move(Assign);
      BestCut = Cut;
      BestLoad = Load;
    }
  };
  for (unsigned Try = 0; Try != std::max(1u, Opt.NumInitialTries); ++Try)
    Consider(initialAssign(Coarsest, Opt, Ctx, RC, RNG));
  if (Opt.NumParts == 2 && Coarsest.getNumNodes() > 1) {
    auto MaxAllowed = Ctx.maxAllowed(Coarsest);
    // Seeds: the nodes heaviest in each constraint, plus a random one.
    std::vector<unsigned> Seeds;
    for (unsigned C = 0; C != Coarsest.getNumConstraints(); ++C) {
      unsigned Heaviest = 0;
      for (unsigned Node = 1; Node != Coarsest.getNumNodes(); ++Node)
        if (Coarsest.nodeWeight(Node, C) > Coarsest.nodeWeight(Heaviest, C))
          Heaviest = Node;
      Seeds.push_back(Heaviest);
    }
    Seeds.push_back(static_cast<unsigned>(
        RNG.nextBelow(Coarsest.getNumNodes())));
    for (unsigned Seed : Seeds)
      Consider(gggpAssign(Coarsest, MaxAllowed, Seed));
  }

  // --- Uncoarsening with refinement at every level.
  bool Observed = telemetry::enabled();
  if (Observed)
    telemetry::value("partitioner.cut_trajectory",
                     static_cast<double>(Coarsest.cutWeight(Best)));
  std::vector<unsigned> Assign = std::move(Best);
  for (size_t Level = Mappings.size(); Level-- > 0;) {
    const auto &FineToCoarse = Mappings[Level];
    std::vector<unsigned> FineAssign(FineToCoarse.size());
    for (unsigned N = 0; N != FineToCoarse.size(); ++N)
      FineAssign[N] = Assign[FineToCoarse[N]];
    Assign = std::move(FineAssign);
    refine(Levels[Level], Assign, Opt, Ctx, RC, RNG, RS);
    // Cut-weight trajectory across uncoarsening (costs a graph sweep, so
    // only computed when someone is watching).
    if (Observed)
      telemetry::value("partitioner.cut_trajectory",
                       static_cast<double>(Levels[Level].cutWeight(Assign)));
  }

  Result.Assignment = std::move(Assign);
  Result.CutWeight = Levels[0].cutWeight(Result.Assignment);
  Result.PartWeights =
      computePartWeights(Levels[0], Result.Assignment, Opt.NumParts);

  if (Observed) {
    telemetry::counter("partitioner.runs");
    telemetry::counter("partitioner.coarsen_levels", Levels.size() - 1);
    telemetry::counter("partitioner.refine_passes", RS.RefinePasses);
    telemetry::counter("partitioner.refine_moves", RS.RefineMoves);
    telemetry::counter("partitioner.swap_moves", RS.SwapMoves);
    telemetry::counter("partitioner.balance_moves", RS.BalanceMoves);
    telemetry::value("partitioner.final_cut",
                     static_cast<double>(Result.CutWeight));
  }
  return Result;
}
