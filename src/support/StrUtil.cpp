//===- support/StrUtil.cpp - String/formatting helpers --------------------===//

#include "support/StrUtil.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>

using namespace gdp;

std::string gdp::formatStr(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result;
  if (Needed > 0) {
    Result.resize(static_cast<size_t>(Needed) + 1);
    vsnprintf(Result.data(), Result.size(), Fmt, ArgsCopy);
    Result.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Result;
}

std::string gdp::padLeft(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string gdp::padRight(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string gdp::formatDouble(double Value, unsigned Decimals) {
  return formatStr("%.*f", static_cast<int>(Decimals), Value);
}

std::string gdp::formatPercent(double Fraction, unsigned Decimals) {
  return formatStr("%.*f%%", static_cast<int>(Decimals), Fraction * 100.0);
}

std::string gdp::join(const std::vector<std::string> &Parts,
                      const std::string &Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

TextTable::TextTable(std::vector<std::string> HeaderIn)
    : Header(std::move(HeaderIn)) {}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity must match header");
  Rows.push_back(std::move(Row));
}

std::string TextTable::render() const {
  std::vector<unsigned> Widths(Header.size(), 0);
  auto Grow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], static_cast<unsigned>(Row[I].size()));
  };
  Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I != 0)
        Out += "  ";
      // First column left-aligned (names); the rest right-aligned (numbers).
      Out += I == 0 ? padRight(Row[I], Widths[I]) : padLeft(Row[I], Widths[I]);
    }
    Out += '\n';
  };
  Emit(Header);
  unsigned Total = 0;
  for (unsigned W : Widths)
    Total += W;
  Out += std::string(Total + 2 * (Widths.size() - 1), '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}
