//===- tests/InterpTests.cpp - Interpreter/profiler unit tests ----------------===//

#include "ir/IRBuilder.h"
#include "profile/Interpreter.h"

#include <gtest/gtest.h>

using namespace gdp;

namespace {

/// Runs main() { ret <expr over two constants> } and returns the result.
int64_t evalBinary(Opcode Op, int64_t A, int64_t C) {
  Program P("t");
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int RA = B.movi(A);
  int RC = B.movi(C);
  int R = B.emitBinary(Op, RA, RC);
  B.ret(R);
  Interpreter I(P);
  InterpResult Res = I.run();
  EXPECT_TRUE(Res.Ok) << Res.Error;
  EXPECT_TRUE(Res.HasReturn);
  return Res.ReturnValue.I;
}

double evalFBinary(Opcode Op, double A, double C) {
  Program P("t");
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int RA = B.movf(A);
  int RC = B.movf(C);
  int R = B.emitBinary(Op, RA, RC);
  B.ret(R);
  Interpreter I(P);
  InterpResult Res = I.run();
  EXPECT_TRUE(Res.Ok) << Res.Error;
  return Res.ReturnValue.F;
}

} // namespace

// --- Arithmetic semantics -----------------------------------------------------

TEST(InterpTest, IntegerArithmetic) {
  EXPECT_EQ(evalBinary(Opcode::Add, 3, 4), 7);
  EXPECT_EQ(evalBinary(Opcode::Sub, 3, 4), -1);
  EXPECT_EQ(evalBinary(Opcode::Mul, -3, 4), -12);
  EXPECT_EQ(evalBinary(Opcode::Div, 7, 2), 3);
  EXPECT_EQ(evalBinary(Opcode::Div, -7, 2), -3); // Trunc toward zero.
  EXPECT_EQ(evalBinary(Opcode::Rem, 7, 3), 1);
  EXPECT_EQ(evalBinary(Opcode::Rem, -7, 3), -1);
}

TEST(InterpTest, BitwiseAndShifts) {
  EXPECT_EQ(evalBinary(Opcode::And, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(evalBinary(Opcode::Or, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(evalBinary(Opcode::Xor, 0b1100, 0b1010), 0b0110);
  EXPECT_EQ(evalBinary(Opcode::Shl, 1, 4), 16);
  EXPECT_EQ(evalBinary(Opcode::AShr, -16, 2), -4);
  EXPECT_EQ(evalBinary(Opcode::LShr, -1, 60), 15);
}

TEST(InterpTest, Comparisons) {
  EXPECT_EQ(evalBinary(Opcode::CmpEQ, 5, 5), 1);
  EXPECT_EQ(evalBinary(Opcode::CmpNE, 5, 5), 0);
  EXPECT_EQ(evalBinary(Opcode::CmpLT, 4, 5), 1);
  EXPECT_EQ(evalBinary(Opcode::CmpLE, 5, 5), 1);
  EXPECT_EQ(evalBinary(Opcode::CmpGT, 5, 4), 1);
  EXPECT_EQ(evalBinary(Opcode::CmpGE, 4, 5), 0);
}

TEST(InterpTest, MinMax) {
  EXPECT_EQ(evalBinary(Opcode::Min, -2, 3), -2);
  EXPECT_EQ(evalBinary(Opcode::Max, -2, 3), 3);
}

TEST(InterpTest, FloatArithmetic) {
  EXPECT_DOUBLE_EQ(evalFBinary(Opcode::FAdd, 1.5, 2.25), 3.75);
  EXPECT_DOUBLE_EQ(evalFBinary(Opcode::FSub, 1.5, 2.25), -0.75);
  EXPECT_DOUBLE_EQ(evalFBinary(Opcode::FMul, 1.5, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(evalFBinary(Opcode::FDiv, 3.0, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(evalFBinary(Opcode::FMin, 1.0, -2.0), -2.0);
  EXPECT_DOUBLE_EQ(evalFBinary(Opcode::FMax, 1.0, -2.0), 1.0);
}

TEST(InterpTest, Conversions) {
  Program P("t");
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int FV = B.movf(3.7);
  int IV = B.ftoi(FV);      // Truncates to 3.
  int Back = B.itof(IV);    // 3.0
  int Sum = B.fadd(Back, B.movf(0.5));
  B.ret(B.ftoi(B.fmul(Sum, B.movf(2.0)))); // (3.5*2)=7
  Interpreter I(P);
  InterpResult R = I.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.I, 7);
}

TEST(InterpTest, SelectAndAbs) {
  EXPECT_EQ(evalBinary(Opcode::Min, 0, 0), 0);
  Program P("t");
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int C = B.movi(0);
  int S = B.select(C, B.movi(10), B.movi(20));
  B.ret(B.add(S, B.abs(B.movi(-5))));
  Interpreter I(P);
  InterpResult R = I.run();
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.I, 25);
}

// --- Control flow and calls -----------------------------------------------------

TEST(InterpTest, LoopSum) {
  Program P("t");
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int Sum = B.movi(0);
  auto L = B.beginCountedLoop(1, 101);
  B.emitBinaryTo(Sum, Opcode::Add, Sum, L.IndVar);
  B.endCountedLoop(L);
  B.ret(Sum);
  Interpreter I(P);
  InterpResult R = I.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.I, 5050);
}

TEST(InterpTest, NestedLoops) {
  Program P("t");
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int Count = B.movi(0);
  auto LO = B.beginCountedLoop(0, 7);
  auto LI = B.beginCountedLoop(0, 11);
  B.emitBinaryTo(Count, Opcode::Add, Count, B.movi(1));
  B.endCountedLoop(LI);
  B.endCountedLoop(LO);
  B.ret(Count);
  Interpreter I(P);
  InterpResult R = I.run();
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.I, 77);
}

TEST(InterpTest, CallPassesArgsAndReturns) {
  Program P("t");
  Function *AddFn = P.makeFunction("adder", 2);
  {
    IRBuilder B(AddFn);
    B.setInsertPoint(AddFn->makeBlock("entry"));
    B.ret(B.add(0, 1));
  }
  Function *Main = P.makeFunction("main", 0);
  P.setEntry(Main->getId());
  IRBuilder B(Main);
  B.setInsertPoint(Main->makeBlock("entry"));
  int R = B.call(AddFn, {B.movi(30), B.movi(12)});
  B.ret(R);
  Interpreter I(P);
  InterpResult Res = I.run();
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.ReturnValue.I, 42);
}

TEST(InterpTest, RecursionFactorial) {
  Program P("t");
  Function *Fact = P.makeFunction("fact", 1);
  {
    IRBuilder B(Fact);
    BasicBlock *Entry = Fact->makeBlock("entry");
    BasicBlock *Base = Fact->makeBlock("base");
    BasicBlock *Rec = Fact->makeBlock("rec");
    B.setInsertPoint(Entry);
    int IsBase = B.cmpLE(0, B.movi(1));
    B.brCond(IsBase, Base, Rec);
    B.setInsertPoint(Base);
    B.ret(B.movi(1));
    B.setInsertPoint(Rec);
    int NMinus1 = B.sub(0, B.movi(1));
    int Sub = B.call(Fact, {NMinus1});
    B.ret(B.mul(0, Sub));
  }
  Function *Main = P.makeFunction("main", 0);
  P.setEntry(Main->getId());
  IRBuilder B(Main);
  B.setInsertPoint(Main->makeBlock("entry"));
  B.ret(B.call(Fact, {B.movi(6)}));
  Interpreter I(P);
  InterpResult R = I.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.I, 720);
}

// --- Memory -----------------------------------------------------------------------

TEST(InterpTest, GlobalLoadStoreRoundTrip) {
  Program P("t");
  int G = P.addGlobal("g", 8, 4);
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int Base = B.addrOf(G);
  B.store(B.movi(99), Base, 5);
  B.ret(B.load(Base, 5));
  Interpreter I(P);
  InterpResult R = I.run();
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.I, 99);
  EXPECT_EQ(I.readGlobalInt(static_cast<unsigned>(G), 5), 99);
}

TEST(InterpTest, GlobalInitializers) {
  Program P("t");
  int G = P.addGlobal("g", 4, 4);
  P.getObject(G).setInit({10, 20, 30}); // 4th defaults to 0.
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int Base = B.addrOf(G);
  int S = B.add(B.load(Base, 0), B.load(Base, 2));
  B.ret(B.add(S, B.load(Base, 3)));
  Interpreter I(P);
  InterpResult R = I.run();
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.I, 40);
}

TEST(InterpTest, MallocAllocatesAndProfiles) {
  Program P("t");
  int Site = P.addHeapSite("buf", 4);
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int Ptr = B.mallocOp(B.movi(16), Site);
  B.store(B.movi(7), Ptr, 15);
  B.ret(B.load(Ptr, 15));
  Interpreter I(P);
  InterpResult R = I.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.I, 7);
  EXPECT_EQ(I.getProfile().getHeapBytes(Site), 64u); // 16 elems × 4 B.
  EXPECT_EQ(I.getProfile().getHeapAllocs(Site), 1u);
  EXPECT_EQ(I.getNumHeapRegions(), 1u);
}

TEST(InterpTest, OutOfBoundsIsError) {
  Program P("t");
  int G = P.addGlobal("g", 4, 4);
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int Base = B.addrOf(G);
  B.ret(B.load(Base, 4)); // One past the end.
  Interpreter I(P);
  InterpResult R = I.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out-of-bounds"), std::string::npos);
}

TEST(InterpTest, DivisionByZeroIsError) {
  Program P("t");
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  B.ret(B.div(B.movi(1), B.movi(0)));
  Interpreter I(P);
  InterpResult R = I.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division"), std::string::npos);
}

TEST(InterpTest, StepLimitHit) {
  Program P("t");
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  BasicBlock *Entry = F->makeBlock("spin");
  B.setInsertPoint(Entry);
  B.br(Entry); // Infinite loop.
  Interpreter I(P);
  InterpResult R = I.run(/*MaxSteps=*/1000);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
  EXPECT_GT(R.Steps, 1000u);
}

// --- Profiling -----------------------------------------------------------------

TEST(InterpTest, BlockFrequenciesMatchTripCounts) {
  Program P("t");
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  auto L = B.beginCountedLoop(0, 13);
  B.endCountedLoop(L);
  B.ret();
  Interpreter I(P);
  ASSERT_TRUE(I.run().Ok);
  const ProfileData &Prof = I.getProfile();
  EXPECT_EQ(Prof.getBlockFreq(0, 0), 1u);  // Entry.
  EXPECT_EQ(Prof.getBlockFreq(0, 1), 14u); // Head: 13 takes + 1 exit test.
  EXPECT_EQ(Prof.getBlockFreq(0, 2), 13u); // Body.
  EXPECT_EQ(Prof.getBlockFreq(0, 3), 1u);  // Exit.
}

TEST(InterpTest, AccessCountsPerObject) {
  Program P("t");
  int A = P.addGlobal("a", 4, 4);
  int Bo = P.addGlobal("b", 4, 4);
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int ABase = B.addrOf(A);
  int BBase = B.addrOf(Bo);
  auto L = B.beginCountedLoop(0, 4);
  int V = B.load(B.add(ABase, L.IndVar)); // 4 accesses to a.
  B.store(V, B.add(BBase, L.IndVar));     // 4 accesses to b.
  B.endCountedLoop(L);
  B.ret();
  Interpreter I(P);
  ASSERT_TRUE(I.run().Ok);
  const ProfileData &Prof = I.getProfile();
  EXPECT_EQ(Prof.getObjectAccessTotal(A), 4u);
  EXPECT_EQ(Prof.getObjectAccessTotal(Bo), 4u);
}

TEST(InterpTest, DeterministicAcrossRuns) {
  Program P("t");
  int G = P.addGlobal("g", 16, 4);
  Function *F = P.makeFunction("main", 0);
  IRBuilder B(F);
  B.setInsertPoint(F->makeBlock("entry"));
  int Base = B.addrOf(G);
  int H = B.movi(1);
  auto L = B.beginCountedLoop(0, 16);
  B.emitBinaryTo(H, Opcode::Mul, H, B.movi(31));
  B.emitBinaryTo(H, Opcode::Add, H, L.IndVar);
  B.store(H, B.add(Base, L.IndVar));
  B.endCountedLoop(L);
  B.ret(H);
  Interpreter I1(P), I2(P);
  InterpResult R1 = I1.run(), R2 = I2.run();
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_EQ(R1.ReturnValue.I, R2.ReturnValue.I);
  EXPECT_EQ(R1.Steps, R2.Steps);
}
