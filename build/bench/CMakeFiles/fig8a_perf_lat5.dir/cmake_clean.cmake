file(REMOVE_RECURSE
  "CMakeFiles/fig8a_perf_lat5.dir/fig8a_perf_lat5.cpp.o"
  "CMakeFiles/fig8a_perf_lat5.dir/fig8a_perf_lat5.cpp.o.d"
  "fig8a_perf_lat5"
  "fig8a_perf_lat5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_perf_lat5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
