file(REMOVE_RECURSE
  "CMakeFiles/gdptool.dir/gdptool.cpp.o"
  "CMakeFiles/gdptool.dir/gdptool.cpp.o.d"
  "gdptool"
  "gdptool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdptool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
