//===- tests/MetricsTests.cpp - Quantile histogram & hub tests --------------===//
//
// Covers the deterministic quantile layer added on top of the stats
// registry: LogHistogram bucketing/merge/quantile semantics, the
// registry's quantile snapshot and JSON section, the process-wide
// MetricsHub aggregation, and the Prometheus text-exposition renderer
// (including a byte-exact golden for the deterministic part).
//
//===----------------------------------------------------------------------===//

#include "support/MetricsHub.h"
#include "support/Telemetry.h"

#include "TestJson.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace gdp;
using namespace gdp::telemetry;

namespace {

// Deterministic pseudo-random positive samples (no <random> seeding drama).
std::vector<double> lcgSamples(size_t N) {
  std::vector<double> Out;
  uint64_t X = 88172645463325252ULL;
  for (size_t I = 0; I != N; ++I) {
    X = X * 6364136223846793005ULL + 1442695040888963407ULL;
    // Spread over ~9 orders of magnitude.
    Out.push_back(static_cast<double>((X >> 33) % 1000000000 + 1) * 1e-3);
  }
  return Out;
}

TEST(LogHistogram, BucketEdgeBoundsSample) {
  // Every sample is <= the upper edge of its bucket, and the edge is at
  // most one sub-bucket width (12.5%) above it.
  for (double V : {1.0, 1.124, 1.125, 3.0, 0.001, 7e-9, 123456789.0, 0.5}) {
    int32_t Idx = LogHistogram::bucketIndex(V);
    double Edge = LogHistogram::bucketUpperEdge(Idx);
    EXPECT_GE(Edge, V) << V;
    EXPECT_LE(Edge, V * 1.125 * (1 + 1e-12)) << V;
  }
  // Power-of-two boundaries land in the first sub-bucket of their octave.
  EXPECT_EQ(LogHistogram::bucketIndex(1.0), 1 * 8 + 0);
  EXPECT_EQ(LogHistogram::bucketIndex(2.0), 2 * 8 + 0);
  EXPECT_EQ(LogHistogram::bucketIndex(0.5), 0 * 8 + 0);
}

TEST(LogHistogram, NonPositiveAndNonFiniteUnderflow) {
  LogHistogram H;
  H.add(0.0);
  H.add(-5.0);
  H.add(std::nan(""));
  H.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.underflowCount(), 4u);
  EXPECT_TRUE(H.buckets().empty());
  // All mass below every bucket: quantiles report 0.
  EXPECT_EQ(H.quantile(0.5), 0.0);
  EXPECT_EQ(H.quantile(0.99), 0.0);
}

TEST(LogHistogram, QuantileRankSemantics) {
  LogHistogram H;
  for (int I = 1; I <= 10; ++I)
    H.add(static_cast<double>(I));
  // Rank ceil(0.5*10)=5 -> bucket of sample 5; the representative is its
  // upper edge, within 12.5% above.
  double P50 = H.quantile(0.5);
  EXPECT_GE(P50, 5.0);
  EXPECT_LE(P50, 5.0 * 1.125);
  double P100 = H.quantile(1.0);
  EXPECT_GE(P100, 10.0);
  EXPECT_LE(P100, 10.0 * 1.125);
  // Q=0 clamps to rank 1 (the minimum's bucket).
  double P0 = H.quantile(0.0);
  EXPECT_GE(P0, 1.0);
  EXPECT_LE(P0, 1.125);
}

TEST(LogHistogram, SplitMergeEqualsSequential) {
  // Merging K partial histograms is exactly the one-histogram result,
  // regardless of how samples were sharded — the property that makes the
  // session-shard merge deterministic at any thread count.
  std::vector<double> Samples = lcgSamples(5000);
  LogHistogram Whole;
  LogHistogram Parts[3];
  for (size_t I = 0; I != Samples.size(); ++I) {
    Whole.add(Samples[I]);
    Parts[I % 3].add(Samples[I]);
  }
  LogHistogram Merged;
  // Merge in a scrambled order: buckets are commutative.
  Merged.merge(Parts[2]);
  Merged.merge(Parts[0]);
  Merged.merge(Parts[1]);
  EXPECT_EQ(Merged.count(), Whole.count());
  EXPECT_EQ(Merged.underflowCount(), Whole.underflowCount());
  EXPECT_EQ(Merged.buckets(), Whole.buckets());
  for (double Q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(Merged.quantile(Q), Whole.quantile(Q)) << Q;
}

TEST(LogHistogram, WeightedAddMatchesRepeatedAdd) {
  LogHistogram A, B;
  A.add(3.5, 7);
  for (int I = 0; I != 7; ++I)
    B.add(3.5);
  EXPECT_EQ(A.buckets(), B.buckets());
  EXPECT_EQ(A.count(), B.count());
}

TEST(StatsRegistry, QuantilesTrackEveryValueSeries) {
  StatsRegistry R;
  for (double X : {1.0, 2.0, 4.0, 8.0})
    R.recordValue("v", X);
  EXPECT_EQ(R.getQuantileHistogram("v").count(), 4u);
  EXPECT_GE(R.quantile("v", 0.5), 2.0);
  EXPECT_LE(R.quantile("v", 0.5), 2.0 * 1.125);
  // Untouched series: empty histogram, quantile 0.
  EXPECT_EQ(R.getQuantileHistogram("nope").count(), 0u);
  EXPECT_EQ(R.quantile("nope", 0.9), 0.0);
}

TEST(StatsRegistry, QuantileSectionInJson) {
  StatsRegistry R;
  for (int I = 0; I != 10; ++I)
    R.recordValue("sched.len", static_cast<double>(I + 1));
  testjson::JVal Doc;
  std::string Err;
  ASSERT_TRUE(testjson::parse(R.toJson(), Doc, Err)) << Err;
  ASSERT_TRUE(Doc.has("quantiles"));
  const testjson::JVal &Q = Doc["quantiles"]["sched.len"];
  EXPECT_EQ(Q["count"].Num, 10);
  EXPECT_DOUBLE_EQ(Q["p50"].Num, R.quantile("sched.len", 0.5));
  EXPECT_DOUBLE_EQ(Q["p90"].Num, R.quantile("sched.len", 0.9));
  EXPECT_DOUBLE_EQ(Q["p99"].Num, R.quantile("sched.len", 0.99));
}

TEST(StatsRegistry, MergePropagatesQuantiles) {
  StatsRegistry A, B;
  A.recordValue("v", 1.0);
  B.recordValue("v", 100.0);
  B.recordValue("only_b", 2.0);
  A.mergeFrom(B);
  EXPECT_EQ(A.getQuantileHistogram("v").count(), 2u);
  EXPECT_EQ(A.getQuantileHistogram("only_b").count(), 1u);
  EXPECT_GE(A.quantile("v", 1.0), 100.0);
}

TEST(MetricsHub, PublishAggregatesSessions) {
  MetricsHub Hub;
  TelemetrySession S1, S2;
  S1.stats().addCounter("runs", 1);
  S1.stats().recordValue("v", 2.0);
  S2.stats().addCounter("runs", 2);
  S2.stats().recordValue("v", 8.0);
  Hub.publish(S1);
  Hub.publish(S2);
  EXPECT_EQ(Hub.sessionsPublished(), 2u);
  EXPECT_EQ(Hub.aggregate().getCounter("runs"), 3u);
  EXPECT_EQ(Hub.aggregate().getValue("v").Count, 2u);
  // The hub's quantiles are the same numbers one giant session would give.
  StatsRegistry Giant;
  Giant.recordValue("v", 2.0);
  Giant.recordValue("v", 8.0);
  for (double Q : {0.5, 0.9, 0.99})
    EXPECT_EQ(Hub.aggregate().quantile("v", Q), Giant.quantile("v", Q));

  testjson::JVal Doc;
  std::string Err;
  ASSERT_TRUE(testjson::parse(Hub.toJson(), Doc, Err)) << Err;
  EXPECT_EQ(Doc["sessions_published"].Num, 2);
  EXPECT_EQ(Doc["counters"]["runs"].Num, 3);

  Hub.reset();
  EXPECT_EQ(Hub.sessionsPublished(), 0u);
  EXPECT_EQ(Hub.aggregate().getCounter("runs"), 0u);
}

TEST(MetricsHub, PrometheusNameSanitization) {
  EXPECT_EQ(MetricsHub::prometheusName("rhop.moves"), "gdp_rhop_moves");
  EXPECT_EQ(MetricsHub::prometheusName("a-b c\"d"), "gdp_a_b_c_d");
  EXPECT_EQ(MetricsHub::prometheusName("ok_name:sub"), "gdp_ok_name:sub");
  EXPECT_EQ(MetricsHub::prometheusName(""), "gdp_");
}

TEST(MetricsHub, PrometheusGolden) {
  // Byte-exact golden of the deterministic exposition (timers excluded):
  // the surface gdpd --stats will serve, so the format is pinned.
  StatsRegistry R;
  R.addCounter("rhop.moves", 42);
  R.recordValue("sched.len", 1.0); // bucket edge 1.125
  R.addTime("wall", 0.25);         // must not appear with IncludeTimers=false
  std::string Got = MetricsHub::renderPrometheus(R, /*IncludeTimers=*/false);
  const char *Want = "# TYPE gdp_rhop_moves counter\n"
                     "gdp_rhop_moves 42\n"
                     "# TYPE gdp_sched_len summary\n"
                     "gdp_sched_len{quantile=\"0.5\"} 1.125\n"
                     "gdp_sched_len{quantile=\"0.9\"} 1.125\n"
                     "gdp_sched_len{quantile=\"0.99\"} 1.125\n"
                     "gdp_sched_len_sum 1\n"
                     "gdp_sched_len_count 1\n";
  EXPECT_EQ(Got, Want);
  // With timers the wall clock shows up as a _seconds counter.
  std::string WithTimers = MetricsHub::renderPrometheus(R);
  EXPECT_NE(WithTimers.find("# TYPE gdp_wall_seconds counter\n"
                            "gdp_wall_seconds 0.25\n"),
            std::string::npos);
}

TEST(MetricsHub, GlobalHubAccumulatesAcrossPublishes) {
  // The process-wide hub used by gdptool's TelemetryExport. Reset first:
  // other tests (and tool runs in-process) may have touched it.
  MetricsHub::global().reset();
  StatsRegistry R;
  R.addCounter("c", 5);
  MetricsHub::global().publish(R);
  EXPECT_EQ(MetricsHub::global().sessionsPublished(), 1u);
  std::string Prom = MetricsHub::global().toPrometheus();
  EXPECT_NE(Prom.find("gdp_sessions_published_total 1\n"),
            std::string::npos);
  EXPECT_NE(Prom.find("gdp_c 5\n"), std::string::npos);
  MetricsHub::global().reset();
}

TEST(MetricsHub, GaugesRenderCurrentValueNotHistory) {
  // Process gauges (serve.breaker.open_shards, ...) are live values: the
  // last setGauge wins, renders with a gauge TYPE line, and reset()
  // clears them with everything else.
  MetricsHub::global().reset();
  MetricsHub::global().setGauge("serve.breaker.open_shards", 2);
  MetricsHub::global().setGauge("serve.breaker.open_shards", 1);
  EXPECT_EQ(MetricsHub::global().gauge("serve.breaker.open_shards"), 1);
  EXPECT_EQ(MetricsHub::global().gauge("no.such.gauge"), 0);
  std::string Prom = MetricsHub::global().toPrometheus();
  EXPECT_NE(Prom.find("# TYPE gdp_serve_breaker_open_shards gauge\n"
                      "gdp_serve_breaker_open_shards 1\n"),
            std::string::npos)
      << Prom;
  MetricsHub::global().reset();
  EXPECT_EQ(MetricsHub::global().gauge("serve.breaker.open_shards"), 0);
  EXPECT_EQ(MetricsHub::global().toPrometheus().find(
                "gdp_serve_breaker_open_shards"),
            std::string::npos);
}

} // namespace
