file(REMOVE_RECURSE
  "CMakeFiles/mediabench_report.dir/mediabench_report.cpp.o"
  "CMakeFiles/mediabench_report.dir/mediabench_report.cpp.o.d"
  "mediabench_report"
  "mediabench_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediabench_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
