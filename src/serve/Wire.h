//===- serve/Wire.h - gdpd wire protocol ------------------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary protocol spoken between `gdpd`, its
/// coordinator mode, the `gdpd_client` library and `gdptool request`
/// (docs/SERVING.md). One message = one frame:
///
///   offset  size  field
///   0       4     magic "GDP1"
///   4       1     verb (Verb below; a response echoes its request's verb)
///   5       1     status (Status below; always Ok in requests)
///   6       2     reserved, must be 0
///   8       4     payload length N (little-endian)
///   12      N     payload
///
/// Payloads are packed little-endian scalars and u32-length-prefixed
/// strings (WireWriter/WireReader). The payload length is bounded
/// (`kMaxPayload`, 16 MiB — inline IR programs fit comfortably); a frame
/// claiming more is a protocol error and the server closes the
/// connection after answering with `Status::BadRequest`. Every malformed
/// input (bad magic, truncated frame, short payload) decodes to a
/// structured `Diag` — never an exception or a crash (the "total entry
/// points" contract of docs/ROBUSTNESS.md extends to the network edge).
///
/// Verbs:
///   Ping       empty request; response payload = str(json server info)
///   Partition  PartitionRequest; response payload = str(json result)
///   Stats      u8 format (StatsFormat); response = str(json/prometheus)
///              or a binary StatsRegistry snapshot (the coordinator's
///              exact-merge path — LogHistogram buckets add losslessly)
///   Shutdown   empty request; server acknowledges, then drains and exits
///
/// Error responses of any verb carry str(json {"diags": [...]}).
///
//===----------------------------------------------------------------------===//

#ifndef GDP_SERVE_WIRE_H
#define GDP_SERVE_WIRE_H

#include "support/StatsRegistry.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gdp {
namespace serve {

/// Frame magic: "GDP1" (protocol version 1 is part of the magic).
constexpr unsigned char kMagic[4] = {'G', 'D', 'P', '1'};
/// Frame header size in bytes.
constexpr size_t kHeaderSize = 12;
/// Largest accepted payload (16 MiB).
constexpr uint32_t kMaxPayload = 16u << 20;

/// Message verbs.
enum class Verb : uint8_t {
  Ping = 1,
  Partition = 2,
  Stats = 3,
  Shutdown = 4,
};

/// Stable lower-case verb name ("ping", ...; "unknown" otherwise).
const char *verbName(Verb V);

/// Response status codes — the protocol-level projection of
/// support::StatusCode (docs/SERVING.md has the full mapping).
enum class Status : uint8_t {
  Ok = 0,
  BadRequest = 1,      ///< Malformed frame or request payload.
  InputError = 2,      ///< Spec failed to load/parse/verify/profile.
  EvalFailed = 3,      ///< Strategy evaluation failed (degradation spent).
  Overloaded = 4,      ///< Admission control shed the request.
  DeadlineExceeded = 5,///< The per-request budget expired.
  ShuttingDown = 6,    ///< Server is draining; request not accepted.
  Unavailable = 7,     ///< Coordinator could not reach the owning shard.
  InternalError = 8,   ///< Unexpected server-side failure.
};

/// Stable lower-snake status name ("ok", "bad_request", ...).
const char *statusName(Status S);

/// One decoded frame.
struct Frame {
  Verb V = Verb::Ping;
  Status S = Status::Ok;
  std::string Payload;
};

/// Encodes a complete frame (header + payload).
std::string encodeFrame(Verb V, Status S, const std::string &Payload);

/// Incremental frame decoder: feed() bytes as they arrive, poll next().
/// One decoder per connection; any protocol violation is sticky (the
/// connection must be dropped after the error is reported).
class FrameReader {
public:
  explicit FrameReader(uint32_t MaxPayload = kMaxPayload)
      : MaxPayload(MaxPayload) {}

  /// Appends received bytes.
  void feed(const char *Data, size_t Len);

  /// Extracts the next complete frame. Returns 1 when \p Out was filled,
  /// 0 when more bytes are needed, -1 on a protocol error (\p Diag is
  /// filled; the stream is poisoned from here on).
  int next(Frame &Out, support::Diag &Diag);

  /// Bytes the decoder still needs before the current frame completes
  /// (kHeaderSize when between frames). Lets a blocking reader recv
  /// exactly the right amount.
  size_t wanted() const;

  /// True once a protocol error poisoned the stream.
  bool poisoned() const { return Poisoned; }

private:
  std::string Buf;
  uint32_t MaxPayload;
  bool Poisoned = false;
};

/// Serializer for payloads: little-endian scalars, u32-length strings.
class WireWriter {
public:
  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u16(uint16_t V);
  void u32(uint32_t V);
  void u64(uint64_t V);
  void f64(double V);
  void str(const std::string &S);
  const std::string &bytes() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  std::string Out;
};

/// Deserializer: every read reports underflow instead of asserting.
class WireReader {
public:
  explicit WireReader(const std::string &Data) : Data(Data) {}
  bool u8(uint8_t &V);
  bool u16(uint16_t &V);
  bool u32(uint32_t &V);
  bool u64(uint64_t &V);
  bool f64(double &V);
  bool str(std::string &S);
  bool atEnd() const { return Pos == Data.size(); }

private:
  const std::string &Data;
  size_t Pos = 0;
};

/// A partition request as carried in a Verb::Partition payload.
struct PartitionRequest {
  /// Workload name, gen:SEED[:OPS] spec — or, with InlineIR, the textual
  /// IR program itself.
  std::string Spec;
  bool InlineIR = false;
  std::string Strategy = "gdp"; ///< gdp|profilemax|naive|unified.
  uint32_t MoveLatency = 5;
  uint32_t Clusters = 2;
  /// Per-request deadline in milliseconds (0 = the server's default).
  uint64_t DeadlineMs = 0;

  std::string encode() const;
  /// Decodes; false (with \p Diag filled) on a malformed payload.
  static bool decode(const std::string &Payload, PartitionRequest &Out,
                     support::Diag &Diag);

  /// The admission/routing key: what the coordinator hashes to pick a
  /// shard and what the warm cache keys on. Inline programs key on their
  /// full text — identical programs share a cache entry.
  std::string key() const { return (InlineIR ? "ir:" : "") + Spec; }
};

/// Stats response format selector (first payload byte of a Stats request).
enum class StatsFormat : uint8_t {
  Json = 0,
  Prometheus = 1,
  Binary = 2, ///< Binary StatsRegistry snapshot (coordinator merge path).
};

/// Serializes a full registry snapshot (counters, value summaries,
/// quantile histogram buckets, timers). The decode+mergeInto round trip
/// is exact: quantiles merge bucket-by-bucket, so a coordinator's merged
/// p50/p90/p99 equal a single process having observed every sample.
std::string encodeRegistry(const telemetry::StatsRegistry &R);

/// Decodes a registry snapshot and merges it into \p Into. False (with
/// \p Diag filled) on a malformed blob.
bool decodeRegistryInto(const std::string &Blob,
                        telemetry::StatsRegistry &Into,
                        support::Diag &Diag);

/// Renders {"diags": [...]} — the error-response payload body.
std::string diagsBody(const std::vector<support::Diag> &Diags);

/// Maps a pipeline/support status code onto the wire status used when a
/// request fails with that diagnostic.
Status statusForCode(support::StatusCode C);

/// True when a response with status \p S may succeed on another replica
/// or a later attempt (transport-shaped failures: the shard was
/// unreachable, overloaded, draining, or failed internally). Request-
/// shaped failures — bad payload, bad spec, evaluation failure, an
/// expired per-request deadline — are final: every replica would answer
/// the same, so the coordinator must not burn the budget retrying them
/// (docs/SERVING.md has the full failure-semantics matrix).
bool retryableStatus(Status S);

} // namespace serve
} // namespace gdp

#endif // GDP_SERVE_WIRE_H
