file(REMOVE_RECURSE
  "CMakeFiles/gdp_machine.dir/MachineModel.cpp.o"
  "CMakeFiles/gdp_machine.dir/MachineModel.cpp.o.d"
  "libgdp_machine.a"
  "libgdp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
