
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Adpcm.cpp" "src/workloads/CMakeFiles/gdp_workloads.dir/Adpcm.cpp.o" "gcc" "src/workloads/CMakeFiles/gdp_workloads.dir/Adpcm.cpp.o.d"
  "/root/repo/src/workloads/Audio.cpp" "src/workloads/CMakeFiles/gdp_workloads.dir/Audio.cpp.o" "gcc" "src/workloads/CMakeFiles/gdp_workloads.dir/Audio.cpp.o.d"
  "/root/repo/src/workloads/Comm.cpp" "src/workloads/CMakeFiles/gdp_workloads.dir/Comm.cpp.o" "gcc" "src/workloads/CMakeFiles/gdp_workloads.dir/Comm.cpp.o.d"
  "/root/repo/src/workloads/Extra.cpp" "src/workloads/CMakeFiles/gdp_workloads.dir/Extra.cpp.o" "gcc" "src/workloads/CMakeFiles/gdp_workloads.dir/Extra.cpp.o.d"
  "/root/repo/src/workloads/Image.cpp" "src/workloads/CMakeFiles/gdp_workloads.dir/Image.cpp.o" "gcc" "src/workloads/CMakeFiles/gdp_workloads.dir/Image.cpp.o.d"
  "/root/repo/src/workloads/Inputs.cpp" "src/workloads/CMakeFiles/gdp_workloads.dir/Inputs.cpp.o" "gcc" "src/workloads/CMakeFiles/gdp_workloads.dir/Inputs.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/gdp_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/gdp_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/Video.cpp" "src/workloads/CMakeFiles/gdp_workloads.dir/Video.cpp.o" "gcc" "src/workloads/CMakeFiles/gdp_workloads.dir/Video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/gdp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gdp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
