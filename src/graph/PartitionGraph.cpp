//===- graph/PartitionGraph.cpp - Weighted undirected graph -----------------===//

#include "graph/PartitionGraph.h"

#include <algorithm>

using namespace gdp;

namespace {

/// Insert-or-accumulate into one sorted edge list.
void accumulate(PartitionGraph::EdgeList &L, unsigned Nbr, uint64_t W) {
  auto It = std::lower_bound(
      L.begin(), L.end(), Nbr,
      [](const std::pair<unsigned, uint64_t> &E, unsigned N) {
        return E.first < N;
      });
  if (It != L.end() && It->first == Nbr)
    It->second += W;
  else
    L.insert(It, {Nbr, W});
}

} // namespace

unsigned PartitionGraph::addNode(std::vector<uint64_t> Weights) {
  assert(Weights.size() == NumConstraints &&
         "node weight vector arity must match constraint count");
  unsigned Id = getNumNodes();
  NodeWeights.push_back(std::move(Weights));
  Adj.emplace_back();
  return Id;
}

void PartitionGraph::addEdge(unsigned A, unsigned B, uint64_t W) {
  assert(A < getNumNodes() && B < getNumNodes() && "edge endpoint missing");
  if (A == B || W == 0)
    return;
  accumulate(Adj[A], B, W);
  accumulate(Adj[B], A, W);
}

uint64_t PartitionGraph::edgeWeight(unsigned A, unsigned B) const {
  assert(A < getNumNodes() && B < getNumNodes() && "edge endpoint missing");
  const EdgeList &L = Adj[A];
  auto It = std::lower_bound(
      L.begin(), L.end(), B,
      [](const std::pair<unsigned, uint64_t> &E, unsigned N) {
        return E.first < N;
      });
  return It != L.end() && It->first == B ? It->second : 0;
}

std::vector<uint64_t> PartitionGraph::totalWeights() const {
  std::vector<uint64_t> Totals(NumConstraints, 0);
  for (const auto &W : NodeWeights)
    for (unsigned C = 0; C != NumConstraints; ++C)
      Totals[C] += W[C];
  return Totals;
}

uint64_t PartitionGraph::totalEdgeWeight() const {
  uint64_t Total = 0;
  for (unsigned N = 0; N != getNumNodes(); ++N)
    for (const auto &[Nbr, W] : Adj[N])
      if (Nbr > N)
        Total += W;
  return Total;
}

uint64_t PartitionGraph::cutWeight(
    const std::vector<unsigned> &Assignment) const {
  assert(Assignment.size() == getNumNodes() &&
         "assignment must cover every node");
  uint64_t Cut = 0;
  for (unsigned N = 0; N != getNumNodes(); ++N)
    for (const auto &[Nbr, W] : Adj[N])
      if (Nbr > N && Assignment[N] != Assignment[Nbr])
        Cut += W;
  return Cut;
}
