//===- gen/Generator.h - Seeded IR program generator ------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, valid-by-construction random IR program generator. The
/// generated corpus is the scenario-diversity front door for the whole
/// pipeline (ROADMAP item 5): differential tests run GDP against the
/// exhaustive optimum on thousands of small generated programs, the
/// robustness suite replays them under fault injection and budgets, and
/// the `gen_scale` bench stretches compile-time work to ~10^5-operation
/// programs where multilevel-vs-streaming tradeoffs become measurable.
///
/// Guarantees:
///   - **Deterministic.** The same `GenOptions` produce a byte-identical
///     program (same `printProgram` text) on every call, thread and
///     process — all randomness flows through `support/Random.h`.
///   - **Valid by construction.** Every program verifies
///     (`verifyProgram`), terminates under the profiling interpreter
///     (loops are counted, the call graph is acyclic), and never faults
///     at runtime: object element counts are rounded to powers of two so
///     every generated index is masked in-bounds, and division is never
///     emitted with an unchecked divisor.
///   - **Analyzable.** Addresses are `addrof`/`malloc` results plus
///     integer arithmetic, which the points-to analysis tracks, so every
///     load/store gets a nonempty access set.
///
/// A failing seed reproduces in one line:
///   gdptool gen --seed=N --ops=K        (emits the program as IR text)
///   gdptool run gen:N:K                 (partitions it directly)
///
//===----------------------------------------------------------------------===//

#ifndef GDP_GEN_GENERATOR_H
#define GDP_GEN_GENERATOR_H

#include <cstdint>
#include <memory>
#include <string>

namespace gdp {

class Program;

namespace gen {

/// Knobs for one generated program. Every field participates in the
/// determinism contract: two equal option structs yield byte-identical
/// programs.
struct GenOptions {
  /// Master seed. Distinct seeds produce structurally distinct programs.
  uint64_t Seed = 1;

  /// Approximate static operation count to emit (the generator stops at
  /// the first statement boundary past this). Exercised up to ~10^5.
  unsigned TargetOps = 200;

  /// Data-object count range (inclusive). Differential presets keep this
  /// small enough for `exhaustiveSearch` (2^N placements).
  unsigned MinObjects = 3;
  unsigned MaxObjects = 8;

  /// Object element-count range. Counts are rounded up to a power of two
  /// so access indices can be masked in-bounds by construction.
  uint64_t MinElems = 8;
  uint64_t MaxElems = 64;

  /// Fraction of objects that are malloc() call sites instead of globals
  /// (sized by the profiling run, as in the paper).
  double HeapFraction = 0.2;

  /// Access skew in [0, 0.95]: 0 = uniform object selection; higher
  /// values concentrate loads/stores on a hot prefix of the object table
  /// (each step of the picker zooms into the first half with this
  /// probability).
  double AccessSkew = 0.5;

  /// Maximum loop nesting depth inside one function.
  unsigned MaxLoopDepth = 2;

  /// Loop trip counts are powers of two in [2, MaxTrip]; the generator
  /// additionally caps the product of enclosing trip counts so the
  /// profiling interpretation stays far below its step limit.
  uint64_t MaxTrip = 16;

  /// Helper-function count range; helpers only call lower-numbered
  /// helpers, so the call graph is a DAG (guaranteed termination).
  unsigned MaxHelpers = 3;

  /// Maximum distinct callees referenced per function (call-graph
  /// fanout).
  unsigned MaxCallFanout = 2;

  /// Probability that an expression statement is a floating-point chain.
  double FloatFraction = 0.15;

  /// Probability that a statement is an if/else diamond.
  double BranchFraction = 0.12;

  /// Attach randomized initializers to globals (exercises `--init`
  /// round-trips; required for interesting interpreted values).
  bool WithInit = true;

  /// Generator-side cap on the *estimated* dynamic operation count; trip
  /// counts and call emission adapt to stay under it. Keeps preparation
  /// (profiling interpretation) fast even at 10^5 static ops.
  uint64_t DynOpLimit = 4000000;

  /// Preset: small differential programs — few objects (so 2^N placement
  /// enumeration is cheap), modest op count, every feature enabled.
  static GenOptions smallDifferential(uint64_t Seed);

  /// Preset: the PropertyTests shape — a handful of objects and loops,
  /// helper calls, ~120 ops.
  static GenOptions property(uint64_t Seed);

  /// Preset: scale benching — \p Ops static operations (10^3..10^5),
  /// larger object table, deeper loops.
  static GenOptions scale(uint64_t Seed, unsigned Ops);
};

/// Generates one program. Never returns an unverified program: the result
/// is checked with `verifyProgram` before being handed out, and a
/// verifier failure (a generator bug) is reported on stderr together with
/// the one-line repro and returned as null. Callers treat null as a hard
/// test failure.
std::unique_ptr<Program> generateProgram(const GenOptions &Opt);

/// The one-line `gdptool` command that regenerates exactly this program
/// (seed, op count, and any non-default shape flags).
std::string reproCommand(const GenOptions &Opt);

/// Parses a `gen:SEED[:OPS]` program spec (the short repro form accepted
/// by `gdptool run`/`sim`/`report`). Returns false if \p Spec is not a
/// gen spec or is malformed.
bool parseGenSpec(const std::string &Spec, GenOptions &Out);

} // namespace gen
} // namespace gdp

#endif // GDP_GEN_GENERATOR_H
