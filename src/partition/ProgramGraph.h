//===- partition/ProgramGraph.h - Program-level data-flow graph -*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program-level data-flow graph of paper §3.3: one node per operation
/// across the whole application, edges for data-dependent register flow
/// (weighted by profile frequency — the expected communication volume if
/// the edge were cut), plus call-boundary edges binding call sites to
/// callee parameter uses and return values. Memory nodes carry the ids of
/// the data objects they may access.
///
/// "This graph is created to generally model the computation patterns that
///  need to be mapped to clusters. The only information recorded about the
///  operations are the data-dependent flow edges."
///
//===----------------------------------------------------------------------===//

#ifndef GDP_PARTITION_PROGRAMGRAPH_H
#define GDP_PARTITION_PROGRAMGRAPH_H

#include <cstdint>
#include <vector>

namespace gdp {

class Operation;
class ProfileData;
class Program;

/// Whole-program operation graph for the first-pass data partitioner.
class ProgramGraph {
public:
  ProgramGraph(const Program &P, const ProfileData &Prof);

  unsigned getNumNodes() const { return static_cast<unsigned>(Ops.size()); }

  /// Dense node id of operation \p OpId in function \p FunctionId.
  unsigned nodeOf(unsigned FunctionId, unsigned OpId) const {
    return FuncBase[FunctionId] + OpId;
  }
  /// Inverse mapping: (function id, op id) of a node.
  std::pair<unsigned, unsigned> funcOpOf(unsigned Node) const;

  /// The operation behind a node (null for id slots with no operation).
  const Operation *getOp(unsigned Node) const { return Ops[Node]; }

  struct Edge {
    unsigned A;
    unsigned B;
    uint64_t W;
  };
  const std::vector<Edge> &edges() const { return Edges; }

  /// Execution count of the node's block (nodes in never-executed blocks
  /// report 0).
  uint64_t freqOf(unsigned Node) const { return Freq[Node]; }

private:
  std::vector<const Operation *> Ops; // node -> operation
  std::vector<unsigned> FuncBase;     // function -> first node id
  std::vector<uint64_t> Freq;         // node -> block frequency
  std::vector<Edge> Edges;
};

} // namespace gdp

#endif // GDP_PARTITION_PROGRAMGRAPH_H
