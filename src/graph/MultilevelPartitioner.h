//===- graph/MultilevelPartitioner.h - Multilevel k-way cut -----*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch multilevel multi-constraint graph partitioner standing in
/// for METIS [14]: heavy-edge-matching coarsening, randomized greedy
/// initial partitioning (best of several seeds), and pass-based
/// Fiduccia–Mattheyses-style refinement at every uncoarsening level.
///
/// The objective matches the paper's use of METIS (§3.3.2): minimize the
/// total weight of cut edges while keeping every balance constraint within
/// a parameterized tolerance ("the memory size balance between clusters is
/// parameterized").
///
//===----------------------------------------------------------------------===//

#ifndef GDP_GRAPH_MULTILEVELPARTITIONER_H
#define GDP_GRAPH_MULTILEVELPARTITIONER_H

#include "graph/PartitionGraph.h"

namespace gdp {

/// Tuning knobs for partitionGraph().
struct GraphPartitionOptions {
  /// Number of parts (clusters) to split into.
  unsigned NumParts = 2;
  /// Allowed per-constraint imbalance: part load may reach
  /// (1 + Tolerance[c]) * total[c] / NumParts. Constraints beyond the
  /// vector's size use DefaultTolerance.
  std::vector<double> Tolerances;
  double DefaultTolerance = 0.15;
  /// RNG seed; the whole run is deterministic given the seed.
  uint64_t Seed = 1;
  /// Stop coarsening when at most this many nodes remain.
  unsigned CoarsenTargetNodes = 48;
  /// Refinement passes per level.
  unsigned MaxRefinePasses = 6;
  /// Cap on accepted refinement moves per uncoarsening level (0 =
  /// unlimited). A budget knob: refinement stops early once the cap is
  /// reached, keeping whatever improvement it already found.
  uint64_t MaxRefineMoves = 0;
  /// Independent initial partitions tried at the coarsest level.
  unsigned NumInitialTries = 4;
  /// Optional relative capacity per part (e.g. {2, 1, 1, 1} gives part 0
  /// twice the capacity of the others). Empty = uniform. Entries beyond
  /// the vector default to 1.
  std::vector<double> PartCapacityShares;
};

/// Result of one partitioning run.
struct GraphPartition {
  std::vector<unsigned> Assignment; ///< node -> part
  uint64_t CutWeight = 0;
  std::vector<std::vector<uint64_t>> PartWeights; ///< [part][constraint]

  /// Largest normalized load over parts and constraints; 1.0 = perfectly
  /// balanced, values above 1 + tolerance violate a constraint.
  double maxNormalizedLoad(const std::vector<uint64_t> &Totals) const;
};

/// Partitions \p G into Opt.NumParts parts.
GraphPartition partitionGraph(const PartitionGraph &G,
                              const GraphPartitionOptions &Opt);

} // namespace gdp

#endif // GDP_GRAPH_MULTILEVELPARTITIONER_H
