//===- bench/fig7_perf_lat1.cpp - Paper Figure 7 ---------------------------===//

#define MOVE_LATENCY 1u
#define FIGURE_NAME "7"
#include "fig78_perf.inc"
