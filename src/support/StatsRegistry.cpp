//===- support/StatsRegistry.cpp - Named counters and histograms ------------===//

#include "support/StatsRegistry.h"

#include "support/StrUtil.h"

#include <cmath>

using namespace gdp;
using namespace gdp::telemetry;

void StatsRegistry::addCounter(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += Delta;
}

void StatsRegistry::recordValue(const std::string &Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mu);
  Values[Name].add(Value);
  Quantiles[Name].add(Value);
}

void StatsRegistry::addTime(const std::string &Name, double Seconds) {
  std::lock_guard<std::mutex> Lock(Mu);
  Timers[Name] += Seconds;
}

uint64_t StatsRegistry::getCounter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double StatsRegistry::getTime(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Timers.find(Name);
  return It == Timers.end() ? 0 : It->second;
}

ValueStats StatsRegistry::getValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Values.find(Name);
  return It == Values.end() ? ValueStats() : It->second;
}

LogHistogram StatsRegistry::getQuantileHistogram(
    const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Quantiles.find(Name);
  return It == Quantiles.end() ? LogHistogram() : It->second;
}

double StatsRegistry::quantile(const std::string &Name, double Q) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Quantiles.find(Name);
  return It == Quantiles.end() ? 0 : It->second.quantile(Q);
}

size_t StatsRegistry::numCounters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters.size();
}

std::map<std::string, uint64_t> StatsRegistry::counterSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}

std::map<std::string, double> StatsRegistry::timerSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Timers;
}

std::map<std::string, ValueStats> StatsRegistry::valueSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Values;
}

std::map<std::string, LogHistogram> StatsRegistry::quantileSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Quantiles;
}

void StatsRegistry::mergeFrom(const StatsRegistry &O) {
  // Copy the source under its own lock first; locking both would risk
  // deadlock if two registries merged into each other concurrently.
  std::map<std::string, uint64_t> OC;
  std::map<std::string, ValueStats> OV;
  std::map<std::string, LogHistogram> OQ;
  std::map<std::string, double> OT;
  {
    std::lock_guard<std::mutex> Lock(O.Mu);
    OC = O.Counters;
    OV = O.Values;
    OQ = O.Quantiles;
    OT = O.Timers;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Name, V] : OC)
    Counters[Name] += V;
  for (const auto &[Name, V] : OV)
    Values[Name].merge(V);
  for (const auto &[Name, V] : OQ)
    Quantiles[Name].merge(V);
  for (const auto &[Name, V] : OT)
    Timers[Name] += V;
}

void StatsRegistry::mergeValue(const std::string &Name,
                               const ValueStats &V) {
  std::lock_guard<std::mutex> Lock(Mu);
  Values[Name].merge(V);
}

void StatsRegistry::mergeQuantile(const std::string &Name,
                                  const LogHistogram &H) {
  std::lock_guard<std::mutex> Lock(Mu);
  Quantiles[Name].merge(H);
}

void StatsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters.clear();
  Values.clear();
  Quantiles.clear();
  Timers.clear();
}

namespace {

/// JSON string escaping for statistic names (ASCII identifiers in
/// practice, but exported files must stay well-formed regardless).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatStr("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    return "0";
  // Round-trippable and compact; trailing-zero trimming keeps files tidy.
  std::string S = formatStr("%.17g", V);
  return S;
}

} // namespace

std::string StatsRegistry::toJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, V] : Counters) {
    Out += First ? "\n" : ",\n";
    Out += formatStr("    \"%s\": %llu", jsonEscape(Name).c_str(),
                     static_cast<unsigned long long>(V));
    First = false;
  }
  Out += "\n  },\n  \"values\": {";
  First = true;
  for (const auto &[Name, V] : Values) {
    Out += First ? "\n" : ",\n";
    Out += formatStr(
        "    \"%s\": {\"count\": %llu, \"sum\": %s, \"min\": %s, "
        "\"max\": %s, \"mean\": %s}",
        jsonEscape(Name).c_str(), static_cast<unsigned long long>(V.Count),
        jsonNumber(V.Sum).c_str(), jsonNumber(V.Min).c_str(),
        jsonNumber(V.Max).c_str(), jsonNumber(V.mean()).c_str());
    First = false;
  }
  Out += "\n  },\n  \"quantiles\": {";
  First = true;
  for (const auto &[Name, V] : Quantiles) {
    Out += First ? "\n" : ",\n";
    Out += formatStr(
        "    \"%s\": {\"count\": %llu, \"p50\": %s, \"p90\": %s, "
        "\"p99\": %s}",
        jsonEscape(Name).c_str(), static_cast<unsigned long long>(V.count()),
        jsonNumber(V.quantile(0.5)).c_str(),
        jsonNumber(V.quantile(0.9)).c_str(),
        jsonNumber(V.quantile(0.99)).c_str());
    First = false;
  }
  Out += "\n  },\n  \"timers_sec\": {";
  First = true;
  for (const auto &[Name, V] : Timers) {
    Out += First ? "\n" : ",\n";
    Out += formatStr("    \"%s\": %s", jsonEscape(Name).c_str(),
                     jsonNumber(V).c_str());
    First = false;
  }
  Out += "\n  }\n}\n";
  return Out;
}
