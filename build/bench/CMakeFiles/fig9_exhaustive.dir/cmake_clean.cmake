file(REMOVE_RECURSE
  "CMakeFiles/fig9_exhaustive.dir/fig9_exhaustive.cpp.o"
  "CMakeFiles/fig9_exhaustive.dir/fig9_exhaustive.cpp.o.d"
  "fig9_exhaustive"
  "fig9_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
