//===- ir/IRPrinter.h - Textual IR dumping ----------------------*- C++ -*-===//
//
// Part of the GDP reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders programs, functions, blocks and operations as human-readable
/// text. Used by the examples, error reporting and golden-output tests.
///
//===----------------------------------------------------------------------===//

#ifndef GDP_IR_IRPRINTER_H
#define GDP_IR_IRPRINTER_H

#include <string>

namespace gdp {

class BasicBlock;
class Function;
class Operation;
class Program;

/// Renders one operation as e.g. "r7 = add r3, r4" or "st r2, [r5+4]".
std::string printOperation(const Operation &Op);

/// Renders one block with its label and operations, one per line.
std::string printBlock(const BasicBlock &BB);

/// Renders a function signature followed by all blocks.
std::string printFunction(const Function &F);

/// Renders the whole program: data objects first, then all functions,
/// then the entry marker. With \p IncludeInit, global initializers are
/// emitted too, making the output fully round-trippable through
/// ir/IRParser.h.
std::string printProgram(const Program &P, bool IncludeInit = false);

} // namespace gdp

#endif // GDP_IR_IRPRINTER_H
